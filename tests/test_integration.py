"""Cross-module integration tests: paper-shape checks at test scale.

These run small (seconds-long) versions of the paper's key comparisons and
assert the *directional* results the full benchmarks verify at scale.
"""

import pytest

from repro.config import baseline_config
from repro.core.simulator import run_simulation, run_single_thread, run_workload
from repro.trace.categories import category_profile
from repro.trace.synthesis import generate_trace
from repro.trace.workloads import build_pool


@pytest.fixture(scope="module")
def mix_pair():
    """An ILP thread plus a memory-bounded thread (the starvation scenario)."""
    ilp = generate_trace(
        category_profile("ISPEC00", "ilp"), seed=5, n_uops=6000, kind="ilp"
    )
    mem = generate_trace(
        category_profile("server", "mem"), seed=7, n_uops=6000, kind="mem"
    )
    return [ilp, mem]


@pytest.fixture(scope="module")
def fig2_cfg():
    return baseline_config(unbounded_regs=True, unbounded_rob=True)


def _run(cfg, policy, traces, **kw):
    kw.setdefault("warmup_uops", 1500)
    kw.setdefault("prewarm_caches", True)
    return run_simulation(cfg, policy, list(traces), **kw)


class TestPaperShapes:
    def test_partitioning_beats_icount_on_mix(self, fig2_cfg, mix_pair):
        """Section 5.1: static IQ partitions protect the ILP thread."""
        icount = _run(fig2_cfg, "icount", mix_pair)
        cssp = _run(fig2_cfg, "cssp", mix_pair)
        assert cssp.ipc > icount.ipc

    def test_pc_trails_cssp_on_mix(self, fig2_cfg, mix_pair):
        """Section 5.1: private clusters waste the other cluster's ports."""
        cssp = _run(fig2_cfg, "cssp", mix_pair)
        pc = _run(fig2_cfg, "pc", mix_pair)
        assert pc.ipc < cssp.ipc

    def test_pc_has_zero_copies_others_communicate(self, fig2_cfg, mix_pair):
        pc = _run(fig2_cfg, "pc", mix_pair)
        cssp = _run(fig2_cfg, "cssp", mix_pair)
        assert pc.stats["copies_per_committed"] == 0.0
        assert cssp.stats["copies_per_committed"] > 0.01

    def test_stall_prevents_iq_stalls(self, fig2_cfg, mix_pair):
        """Figure 4: Stall is the most effective at avoiding queue-full."""
        icount = _run(fig2_cfg, "icount", mix_pair)
        stall = _run(fig2_cfg, "stall", mix_pair)
        assert (
            stall.stats["iq_stalls_per_committed"]
            < icount.stats["iq_stalls_per_committed"] * 0.5
        )

    def test_flush_plus_flushes_on_mem_workload(self, fig2_cfg, mix_pair):
        flush = _run(fig2_cfg, "flush+", mix_pair)
        assert flush.stats["flushes"] > 0

    def test_bigger_iq_lifts_icount(self, mix_pair):
        cfg32 = baseline_config(
            unbounded_regs=True, unbounded_rob=True
        ).with_iq_entries(32)
        cfg64 = cfg32.with_iq_entries(64)
        a = _run(cfg32, "icount", mix_pair)
        b = _run(cfg64, "icount", mix_pair)
        assert b.ipc > a.ipc * 0.98  # more entries never hurt much


class TestRegisterFileShapes:
    def test_static_rf_partition_hurts_disjoint_pair(self):
        """Section 5.2: ISPEC-FSPEC loses under static RF partitioning."""
        cfg = baseline_config()
        ispec = generate_trace(
            category_profile("ISPEC00", "mem"), seed=3, n_uops=6000, kind="mem"
        )
        fspec = generate_trace(
            category_profile("FSPEC00", "mem"), seed=4, n_uops=6000, kind="mem"
        )
        cssp = _run(cfg, "cssp", [ispec, fspec])
        cssprf = _run(cfg, "cssprf", [ispec, fspec])
        assert cssprf.ipc <= cssp.ipc * 1.02

    def test_cdprf_recovers_static_partition_loss(self):
        cfg = baseline_config()
        ispec = generate_trace(
            category_profile("ISPEC00", "mem"), seed=3, n_uops=6000, kind="mem"
        )
        fspec = generate_trace(
            category_profile("FSPEC00", "mem"), seed=4, n_uops=6000, kind="mem"
        )
        from repro.policies import make_policy

        cssprf = _run(cfg, "cssprf", [ispec, fspec])
        cdprf = _run(cfg, make_policy("cdprf", interval=1024), [ispec, fspec])
        assert cdprf.ipc >= cssprf.ipc * 0.98


class TestMethodology:
    def test_single_thread_faster_than_shared(self, mix_pair):
        """Co-running can only slow a thread down."""
        cfg = baseline_config()
        st = run_single_thread(cfg, mix_pair[0], warmup_uops=1000,
                               prewarm_caches=True)
        mt = _run(cfg, "icount", mix_pair)
        assert mt.thread_ipc(0) <= st.ipc * 1.05

    def test_pool_end_to_end_small(self):
        """A whole (tiny) pool simulates without incident."""
        cfg = baseline_config()
        pool = build_pool(n_uops=1200, n_ilp=1, n_mem=0, n_mix=1,
                          n_mixes_category=1)
        for wl in pool:
            res = run_workload(cfg, "cdprf", wl, max_cycles=100_000)
            assert res.committed > 0

    def test_mem_trace_is_memory_bound(self):
        """MEM traces must actually be memory-bound (low IPC, L2 misses)."""
        cfg = baseline_config()
        mem = generate_trace(
            category_profile("server", "mem"), seed=9, n_uops=5000, kind="mem"
        )
        res = run_single_thread(cfg, mem, warmup_uops=1000, prewarm_caches=True)
        assert res.ipc < 1.0
        assert res.stats["extra"]["l2_misses"] > 50

    def test_ilp_trace_is_compute_bound(self):
        cfg = baseline_config()
        ilp = generate_trace(
            category_profile("DH", "ilp"), seed=9, n_uops=5000, kind="ilp"
        )
        res = run_single_thread(cfg, ilp, warmup_uops=1000, prewarm_caches=True)
        assert res.ipc > 1.5
        assert res.stats["extra"]["l2_misses"] == 0
