"""TLB model tests."""

from repro.config import TLBConfig
from repro.memory.tlb import TLB


def _tlb(entries=64, assoc=8, miss_latency=30):
    return TLB(TLBConfig(entries=entries, assoc=assoc, miss_latency=miss_latency))


def test_miss_then_hit_same_page():
    t = _tlb()
    assert t.translate(0) == 30
    assert t.translate(0) == 0
    # lines 0..63 share the 4K page (64 lines of 64B)
    assert t.translate(63) == 0
    assert t.translate(64) == 30  # next page


def test_counters():
    t = _tlb()
    t.translate(0)
    t.translate(1)
    t.translate(64 * 5)
    assert t.misses == 2 and t.hits == 1
    t.reset_stats()
    assert t.misses == 0 and t.hits == 0


def test_capacity_eviction():
    t = _tlb(entries=8, assoc=8)  # one set, 8 ways
    for page in range(9):
        t.translate(page * 64)
    assert t.translate(0) == 30  # page 0 was evicted


def test_custom_miss_latency():
    t = _tlb(miss_latency=99)
    assert t.translate(12345) == 99
