"""Memory hierarchy (L1/L2/memory + buses) tests."""

import pytest

from repro.config import CacheConfig, MemoryConfig, TLBConfig
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture()
def mem():
    cfg = MemoryConfig(
        l1=CacheConfig(size_bytes=1024, assoc=2, hit_latency=1),
        l2=CacheConfig(size_bytes=16 * 1024, assoc=8, hit_latency=12),
        memory_latency=60,
        dtlb=TLBConfig(entries=64, assoc=8, miss_latency=30),
    )
    return MemoryHierarchy(cfg)


def _touch_page(mem, line=0):
    """Prime the DTLB so later latencies are cache-only."""
    mem.access(line, now=0)


def test_cold_access_goes_to_memory(mem):
    res = mem.access(4096, now=100)
    assert res.l2_miss and not res.l1_hit
    # L1 hit lat + tlb walk + L2 lat + memory lat
    assert res.latency == 1 + 30 + 12 + 60


def test_l1_hit_after_fill(mem):
    mem.access(5, now=0)
    res = mem.access(5, now=300)
    assert res.l1_hit
    assert res.latency == 1


def test_l2_hit_after_l1_eviction(mem):
    _touch_page(mem)
    # L1: 8 sets x 2 ways; lines 0, 8, 16 collide in set 0
    mem.access(0, now=200)
    mem.access(8, now=300)
    mem.access(16, now=400)  # evicts 0 from L1; L2 keeps it
    res = mem.access(0, now=500)
    assert not res.l1_hit and res.l2_hit
    assert res.latency == 1 + 12


def test_bus_contention(mem):
    _touch_page(mem)
    # three simultaneous L1 misses over two buses (same 4K page so the
    # DTLB stays out of the latency): the third waits for a bus
    r1 = mem.access(40, now=1000)
    r2 = mem.access(48, now=1000)
    r3 = mem.access(56, now=1000)
    assert r1.latency == r2.latency
    assert r3.latency == r1.latency + 1
    assert mem.bus_wait_cycles == 1


def test_miss_coalescing(mem):
    _touch_page(mem)
    first = mem.access(200, now=0)
    again = mem.access(200, now=5)
    assert again.l2_hit  # merged into the in-flight fill
    assert again.latency <= first.latency
    assert mem.coalesced_misses == 1


def test_coalesced_latency_matches_fill_completion(mem):
    _touch_page(mem)
    first = mem.access(300, now=0)
    again = mem.access(300, now=10)
    assert 10 + again.latency == first.latency  # same absolute completion


def test_store_allocates(mem):
    mem.access(77, now=0, is_store=True)
    res = mem.access(77, now=500)
    assert res.l1_hit


def test_tlb_miss_reported(mem):
    res = mem.access(0, now=0)
    assert res.tlb_miss
    res2 = mem.access(1, now=100)
    assert not res2.tlb_miss


def test_reset_stats(mem):
    mem.access(0, now=0)
    mem.reset_stats()
    assert mem.l1.accesses == 0
    assert mem.l2.accesses == 0
    assert mem.bus_wait_cycles == 0
