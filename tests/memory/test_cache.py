"""Set-associative cache model tests."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import SetAssocCache


def _cache(size=1024, assoc=2, line=64):
    return SetAssocCache(CacheConfig(size_bytes=size, assoc=assoc, line_bytes=line))


def test_geometry():
    c = _cache(size=1024, assoc=2, line=64)
    assert c.num_sets == 8
    assert c.assoc == 2


def test_geometry_must_divide():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, assoc=3, line_bytes=64)


def test_miss_then_hit():
    c = _cache()
    assert not c.access(5)
    assert c.access(5)
    assert c.hits == 1 and c.misses == 1


def test_lru_eviction():
    c = _cache(size=1024, assoc=2)  # 8 sets, 2 ways
    a, b, d = 0, 8, 16  # all map to set 0
    c.access(a)
    c.access(b)
    c.access(d)  # evicts a (LRU)
    assert not c.probe(a)
    assert c.probe(b) and c.probe(d)
    assert c.evictions == 1


def test_lru_refresh_on_hit():
    c = _cache(size=1024, assoc=2)
    a, b, d = 0, 8, 16
    c.access(a)
    c.access(b)
    c.access(a)  # refresh a; b becomes LRU
    c.access(d)  # evicts b
    assert c.probe(a) and not c.probe(b)


def test_probe_does_not_allocate():
    c = _cache()
    assert not c.probe(3)
    assert not c.probe(3)
    assert c.misses == 0  # probe is stats-neutral


def test_invalidate():
    c = _cache()
    c.access(7)
    assert c.invalidate(7)
    assert not c.probe(7)
    assert not c.invalidate(7)


def test_hit_rate_and_reset():
    c = _cache()
    c.access(1)
    c.access(1)
    c.access(2)
    assert c.hit_rate == pytest.approx(1 / 3)
    c.reset_stats()
    assert c.accesses == 0 and c.hit_rate == 0.0


def test_occupancy():
    c = _cache(size=1024, assoc=2)
    for line in range(10):
        c.access(line)
    assert c.occupancy() == 10


def test_from_geometry():
    c = SetAssocCache.from_geometry(4, 2, name="tiny")
    for line in range(8):
        assert not c.access(line)
    assert c.occupancy() == 8
    assert not c.access(8)  # evicts line 0
    assert not c.probe(0)


def test_capacity_never_exceeded():
    c = _cache(size=1024, assoc=2)
    for line in range(1000):
        c.access(line)
    assert c.occupancy() <= 16
