"""4-way SMT tests.

The paper evaluates 2-thread workloads, but its schemes are defined for N
threads (shares are ``capacity / num_threads``; Flush+ explicitly discusses
the >2-thread Flush++ case).  The machinery must generalize: these tests
run four threads through every scheme and check shares, fairness plumbing
and exactness.
"""

import pytest

from repro.config import baseline_config
from repro.core.processor import Processor
from repro.core.simulator import run_simulation
from repro.metrics.fairness import fairness
from repro.policies import POLICY_NAMES, make_policy
from repro.trace.synthesis import TraceProfile, generate_trace


@pytest.fixture(scope="module")
def four_traces():
    profiles = [
        TraceProfile(name="t0", dep_locality=0.35, working_set_lines=300),
        TraceProfile(name="t1", frac_fp=0.5, dep_locality=0.4, working_set_lines=300),
        TraceProfile(name="t2", frac_branch=0.16, dep_locality=0.5,
                     working_set_lines=400),
        TraceProfile(name="t3", frac_load=0.3, dep_locality=0.5,
                     working_set_lines=90_000, load_dep_chain=0.25),
    ]
    return [
        generate_trace(p, seed=41 + i, n_uops=1500, kind="mem" if i == 3 else "ilp")
        for i, p in enumerate(profiles)
    ]


@pytest.fixture(scope="module")
def config4():
    return baseline_config().with_threads(4)


@pytest.mark.parametrize("policy", [p for p in POLICY_NAMES if p != "pc"])
def test_all_policies_run_four_threads(config4, four_traces, policy):
    proc = Processor(config4, make_policy(policy), four_traces)
    while not proc.all_done() and proc.cycle < 400_000:
        proc.step()
    assert proc.all_done()
    assert proc.stats.committed_per_thread == [1500] * 4


def test_pc_binds_threads_modulo_clusters(config4, four_traces):
    # with 4 threads on 2 clusters, PC maps threads 0/2 -> cluster 0,
    # 1/3 -> cluster 1
    proc = Processor(config4, make_policy("pc"), four_traces)
    pol = proc.policy
    assert pol.forced_cluster(0) == 0 and pol.forced_cluster(2) == 0
    assert pol.forced_cluster(1) == 1 and pol.forced_cluster(3) == 1
    while not proc.all_done() and proc.cycle < 400_000:
        proc.step()
    assert proc.all_done()
    assert proc.stats.copies_renamed == 0


def test_cssp_share_is_quarter_per_cluster(config4, four_traces):
    proc = Processor(config4, make_policy("cssp"), four_traces)
    cap = proc.clusters[0].iq.capacity
    for _ in range(3000):
        proc.step()
        for tid in range(4):
            for cl in proc.clusters:
                assert cl.iq.per_thread[tid] <= cap // 4
        if proc.all_done():
            break


def test_four_thread_throughput_exceeds_two(config4, four_traces):
    cfg2 = baseline_config()
    two = run_simulation(cfg2, "cssp", four_traces[:2], stop="all_done")
    four = run_simulation(config4, "cssp", four_traces, stop="all_done")
    # more threads keep the machine busier overall
    assert four.ipc > two.ipc * 0.9


def test_fairness_metric_generalizes(config4, four_traces):
    res = run_simulation(config4, "cssp", four_traces, stop="first_done")
    st_refs = [
        run_simulation(
            baseline_config().with_threads(1), "icount", [tr], stop="all_done"
        ).ipc
        for tr in four_traces
    ]
    mt = [res.thread_ipc(t) for t in range(4)]
    if all(m > 0 for m in mt):
        f = fairness(mt, st_refs)
        assert 0.0 <= f <= 1.0


def test_cdprf_thresholds_per_thread(config4, four_traces):
    pol = make_policy("cdprf", interval=512)
    proc = Processor(config4, pol, four_traces)
    total_int = sum(c.regs[0].capacity for c in proc.clusters)
    assert all(pol.threshold[t][0] == total_int // 4 for t in range(4))
    while not proc.all_done() and proc.cycle < 400_000:
        proc.step()
    assert proc.all_done()
