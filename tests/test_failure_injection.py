"""Failure-injection tests: adversarial events against pipeline exactness.

The squash machinery (branch resolution + Flush+) is the most invariant-
critical code in the simulator: it must undo rename state *exactly* under
any interleaving.  These tests force flushes, gates and un-gates at
arbitrary points of real runs and assert the architecture still commits
every instruction exactly once with no resource leaks.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import baseline_config
from repro.core.processor import Processor
from repro.isa import NO_REG
from repro.policies import make_policy
from repro.trace.synthesis import TraceProfile, generate_trace


def _traces(seed=5, n=2500):
    prof_a = TraceProfile(
        name="fi-a", frac_branch=0.12, dep_locality=0.45, working_set_lines=400
    )
    prof_b = TraceProfile(
        name="fi-b", frac_branch=0.1, frac_fp=0.4, dep_locality=0.4,
        working_set_lines=120_000, load_dep_chain=0.3,
    )
    return [
        generate_trace(prof_a, seed=seed, n_uops=n, kind="ilp"),
        generate_trace(prof_b, seed=seed + 1, n_uops=n, kind="mem"),
    ]


def _assert_exact_finish(proc: Processor, lengths: list[int]) -> None:
    assert proc.all_done()
    assert proc.stats.committed_per_thread == lengths
    assert proc.mob.occupancy == 0
    for cl in proc.clusters:
        assert cl.iq.occupancy == 0
        assert cl.iq.per_thread == [0] * proc.config.num_threads
    expected = [[0, 0], [0, 0]]
    for t in proc.threads:
        assert len(t.rob) == 0 and not t.inflight and t.icount == 0
        for arch, m in t.rename_table.live_mappings():
            k = 0 if arch < 16 else 1
            expected[m.cluster][k] += 1
            if m.replica != NO_REG:
                expected[1 - m.cluster][k] += 1
    for c, cl in enumerate(proc.clusters):
        for k in (0, 1):
            assert cl.regs[k].in_use == expected[c][k]


@given(
    flush_points=st.lists(st.integers(50, 4000), min_size=1, max_size=6, unique=True),
    victim=st.integers(0, 1),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_forced_flushes_preserve_exactness(flush_points, victim):
    """Flushing an arbitrary thread at arbitrary cycles never corrupts
    architectural bookkeeping — the run still finishes exactly."""
    traces = _traces()
    proc = Processor(baseline_config(), make_policy("icount"), traces)
    points = sorted(flush_points)
    while not proc.all_done() and proc.cycle < 200_000:
        proc.step()
        if points and proc.cycle >= points[0]:
            points.pop(0)
            thread = proc.threads[victim]
            if thread.inflight:
                # flush everything younger than the current oldest uop
                proc.flush_thread(thread, keep_age=thread.inflight[0].age)
                thread.flushed = False  # immediately resume (worst case)
    _assert_exact_finish(proc, [len(t) for t in traces])


@given(
    gate_spans=st.lists(
        st.tuples(st.integers(100, 3000), st.integers(10, 400)),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_gating_preserves_exactness(gate_spans):
    """Arbitrarily gating/un-gating rename (Stall-style) cannot wedge or
    corrupt the machine."""
    traces = _traces(seed=11)
    proc = Processor(baseline_config(), make_policy("icount"), traces)
    events = sorted((start, start + dur) for start, dur in gate_spans)
    while not proc.all_done() and proc.cycle < 250_000:
        proc.step()
        for start, end in events:
            if start <= proc.cycle < end:
                proc.threads[proc.cycle % 2].gated = True
            elif proc.cycle == end:
                for t in proc.threads:
                    t.gated = False
    for t in proc.threads:
        t.gated = False
    while not proc.all_done() and proc.cycle < 400_000:
        proc.step()
    _assert_exact_finish(proc, [len(t) for t in traces])


def test_flush_storm():
    """Flush a thread every 100 cycles for the whole run (far harsher than
    Flush+ would): forward progress and exactness must survive."""
    traces = _traces(seed=23, n=1500)
    proc = Processor(baseline_config(), make_policy("icount"), traces)
    while not proc.all_done() and proc.cycle < 400_000:
        proc.step()
        if proc.cycle % 100 == 0:
            thread = proc.threads[(proc.cycle // 100) % 2]
            if thread.inflight:
                proc.flush_thread(thread, keep_age=thread.inflight[0].age)
                thread.flushed = False
    _assert_exact_finish(proc, [len(t) for t in traces])


def test_alternating_flush_and_mispredict_interaction():
    """Flushes landing while a thread is in wrong-path mode must reset its
    speculation state consistently (the branch may be squashed)."""
    prof = TraceProfile(
        name="branchy", frac_branch=0.2, branch_bias=0.75, dep_locality=0.4
    )
    traces = [
        generate_trace(prof, seed=31, n_uops=1500, kind="ilp"),
        generate_trace(prof, seed=32, n_uops=1500, kind="ilp"),
    ]
    proc = Processor(baseline_config(), make_policy("icount"), traces)
    while not proc.all_done() and proc.cycle < 300_000:
        proc.step()
        if proc.cycle % 73 == 0:
            for thread in proc.threads:
                if thread.wrong_path and thread.inflight:
                    proc.flush_thread(thread, keep_age=thread.inflight[0].age)
                    thread.flushed = False
    _assert_exact_finish(proc, [1500, 1500])
