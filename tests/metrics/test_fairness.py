"""Fairness metric ([17]/[33]) tests."""

import pytest

from repro.metrics.fairness import fairness, fairness_speedup


def test_equal_slowdown_is_perfectly_fair():
    # both threads at 50% of their standalone speed
    assert fairness([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.0)


def test_starved_thread_drives_fairness_down():
    # thread 1 at 10% progress, thread 0 at 90%
    f = fairness([0.9, 0.1], [1.0, 1.0])
    assert f == pytest.approx(0.1 / 0.9)


def test_total_starvation_is_zero():
    assert fairness([1.0, 0.0], [1.0, 1.0]) == 0.0


def test_symmetry():
    a = fairness([0.5, 0.8], [1.0, 1.0])
    b = fairness([0.8, 0.5], [1.0, 1.0])
    assert a == pytest.approx(b)


def test_bounds():
    f = fairness([0.3, 0.7], [1.0, 1.0])
    assert 0.0 <= f <= 1.0


def test_input_validation():
    with pytest.raises(ValueError):
        fairness([1.0], [1.0])  # needs >= 2 threads
    with pytest.raises(ValueError):
        fairness([1.0, 1.0], [1.0])  # length mismatch
    with pytest.raises(ValueError):
        fairness([1.0, 1.0], [0.0, 1.0])  # zero reference


def test_speedup_relative_to_baseline():
    st = [1.0, 1.0]
    base_mt = [0.9, 0.3]  # fairness = 1/3
    new_mt = [0.6, 0.4]   # fairness = 2/3
    assert fairness_speedup(new_mt, st, base_mt) == pytest.approx(2.0)


def test_speedup_rejects_zero_baseline_fairness():
    with pytest.raises(ValueError):
        fairness_speedup([0.5, 0.5], [1.0, 1.0], [1.0, 0.0])
