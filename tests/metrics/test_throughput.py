"""Throughput metric helper tests."""

import pytest

from repro.metrics.throughput import geomean, mean, normalize, speedup


def test_speedup():
    assert speedup(2.0, 1.0) == 2.0
    assert speedup(1.0, 2.0) == 0.5


def test_speedup_rejects_dead_baseline():
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
    with pytest.raises(ValueError):
        speedup(1.0, -1.0)


def test_normalize():
    assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geomean_rejects_nonpositive_and_empty():
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([])


def test_geomean_below_mean_for_spread_values():
    vals = [0.5, 2.0, 1.0]
    assert geomean(vals) < mean(vals)
