"""Shared fixtures: small traces, configs and helper builders.

Traces here are deliberately tiny (1-4k uops) so the whole unit suite runs
in seconds; benchmark-scale runs live under ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.config import baseline_config
from repro.trace.synthesis import TraceProfile, generate_trace


@pytest.fixture(scope="session", autouse=True)
def _isolated_trace_cache(tmp_path_factory):
    """Point the trace-synthesis cache at a per-session temp directory.

    Keeps the suite hermetic (no reads from, or writes to, the user's
    ``~/.cache/repro/traces``) while still exercising the cache code paths
    that :func:`repro.trace.synthesis.generate_trace` goes through.
    """
    import os

    from repro.trace import cache

    old = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(tmp_path_factory.mktemp("trace-cache"))
    cache.reset_stats()
    yield
    if old is None:
        os.environ.pop("REPRO_TRACE_CACHE", None)
    else:
        os.environ["REPRO_TRACE_CACHE"] = old


@pytest.fixture(scope="session", autouse=True)
def _isolated_cost_model(tmp_path_factory):
    """Point sweep-scheduler cost-model persistence at a temp file so test
    sweeps never rewrite the checked-in ``benchmarks/results/cost_model.json``."""
    import os

    old = os.environ.get("REPRO_COST_MODEL")
    os.environ["REPRO_COST_MODEL"] = str(
        tmp_path_factory.mktemp("cost-model") / "cost_model.json"
    )
    yield
    if old is None:
        os.environ.pop("REPRO_COST_MODEL", None)
    else:
        os.environ["REPRO_COST_MODEL"] = old


# A compact, fast default machine for tests: the Table 1 baseline.
@pytest.fixture(scope="session")
def config():
    return baseline_config()


@pytest.fixture(scope="session")
def unbounded_config():
    """Figure 2's setup: unbounded registers and ROB."""
    return baseline_config(unbounded_regs=True, unbounded_rob=True)


@pytest.fixture(scope="session")
def ilp_profile():
    return TraceProfile(
        name="test-ilp",
        frac_load=0.2,
        frac_store=0.08,
        frac_branch=0.08,
        dep_mean_distance=9.0,
        dep_locality=0.3,
        working_set_lines=200,
        stride_frac=0.7,
        branch_bias=0.95,
        int_regs_used=10,
        fp_regs_used=10,
        n_blocks=24,
    )


@pytest.fixture(scope="session")
def mem_profile():
    return TraceProfile(
        name="test-mem",
        frac_load=0.3,
        frac_store=0.1,
        frac_branch=0.1,
        dep_mean_distance=4.0,
        dep_locality=0.55,
        working_set_lines=150_000,
        stride_frac=0.4,
        load_dep_chain=0.3,
        branch_bias=0.9,
        int_regs_used=12,
        fp_regs_used=4,
        n_blocks=48,
    )


@pytest.fixture(scope="session")
def fp_profile():
    return TraceProfile(
        name="test-fp",
        frac_load=0.22,
        frac_store=0.08,
        frac_branch=0.07,
        frac_fp=0.65,
        dep_mean_distance=8.0,
        dep_locality=0.35,
        working_set_lines=300,
        stride_frac=0.8,
        branch_bias=0.96,
        int_regs_used=6,
        fp_regs_used=12,
        n_blocks=24,
    )


@pytest.fixture(scope="session")
def ilp_trace(ilp_profile):
    return generate_trace(ilp_profile, seed=11, n_uops=3000, kind="ilp")


@pytest.fixture(scope="session")
def ilp_trace_b(ilp_profile):
    return generate_trace(ilp_profile, seed=23, n_uops=3000, kind="ilp")


@pytest.fixture(scope="session")
def mem_trace(mem_profile):
    return generate_trace(mem_profile, seed=17, n_uops=3000, kind="mem")


@pytest.fixture(scope="session")
def mem_trace_b(mem_profile):
    return generate_trace(mem_profile, seed=29, n_uops=3000, kind="mem")


@pytest.fixture(scope="session")
def fp_trace(fp_profile):
    return generate_trace(fp_profile, seed=19, n_uops=3000, kind="ilp")
