"""Event ring + severity filter unit tests."""

import pytest

from repro.telemetry import (
    STEER_REDIRECT,
    Event,
    EventRing,
    Severity,
    Telemetry,
    TelemetryConfig,
)


def _ev(cycle, kind="flush", severity=Severity.INFO, tid=0):
    return Event(cycle, kind, severity, tid, -1, None)


def test_ring_append_and_order():
    ring = EventRing(8)
    for c in range(5):
        ring.append(_ev(c))
    assert len(ring) == 5
    assert ring.dropped == 0
    assert [e.cycle for e in ring] == [0, 1, 2, 3, 4]


def test_ring_wraps_evicting_oldest():
    ring = EventRing(4)
    for c in range(10):
        ring.append(_ev(c))
    assert len(ring) == 4
    assert ring.dropped == 6
    # survivors are the newest four, still oldest-first
    assert [e.cycle for e in ring] == [6, 7, 8, 9]


def test_ring_clear():
    ring = EventRing(4)
    for c in range(6):
        ring.append(_ev(c))
    ring.clear()
    assert len(ring) == 0 and ring.dropped == 0
    ring.append(_ev(42))
    assert [e.cycle for e in ring] == [42]


def test_ring_rejects_bad_capacity():
    with pytest.raises(ValueError):
        EventRing(0)


def test_config_validation():
    with pytest.raises(ValueError):
        TelemetryConfig(sample_interval=0)
    with pytest.raises(ValueError):
        TelemetryConfig(ring_capacity=-1)


def test_severity_filter_at_emit_time():
    tel = Telemetry(TelemetryConfig(min_severity=Severity.INFO))
    tel.emit(1, STEER_REDIRECT, Severity.DEBUG, tid=0)
    assert len(tel.events) == 0  # below threshold: never materialized
    tel.emit(2, "flush", Severity.INFO, tid=0)
    assert len(tel.events) == 1

    debug = Telemetry(TelemetryConfig(min_severity=Severity.DEBUG))
    debug.emit(1, STEER_REDIRECT, Severity.DEBUG, tid=0)
    assert len(debug.events) == 1


def test_events_off_drops_everything():
    tel = Telemetry(TelemetryConfig(events=False))
    tel.emit(1, "flush", Severity.WARN, tid=0)
    assert len(tel.events) == 0


def test_event_as_dict_inlines_data():
    ev = Event(7, "flush", Severity.INFO, 1, -1, {"keep_age": 33})
    d = ev.as_dict()
    assert d["cycle"] == 7 and d["severity"] == "info"
    assert d["keep_age"] == 33


def test_starvation_episode_lifecycle():
    """Consecutive reg-stalls form one episode; a gap closes it."""
    tel = Telemetry(TelemetryConfig(sample_interval=1 << 30))
    for cycle in (10, 11, 12):
        tel.note_reg_stall(cycle, tid=0, regclass=0)
    # nothing stalled on cycle 13 -> end_cycle closes the episode
    tel._close_stale_episodes(13)
    kinds = [e.kind for e in tel.events]
    assert kinds == ["starve_begin", "starve_end"]
    end = list(tel.events)[-1]
    assert end.data == {"regclass": 0, "begin": 10, "duration": 3}
