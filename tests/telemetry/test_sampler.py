"""Interval sampler tests: schema, deltas, and the no-perturbation contract."""

import dataclasses

import pytest

from repro.core.processor import Processor
from repro.core.stats import STALL_CAUSES
from repro.policies import make_policy
from repro.telemetry import IntervalSampler, Telemetry, TelemetryConfig


def _run(config, traces, policy="icount", telemetry=None, max_cycles=2500,
         **policy_kw):
    proc = Processor(
        config, make_policy(policy, **policy_kw), traces, telemetry=telemetry
    )
    while not proc.any_done() and proc.cycle < max_cycles:
        proc.step()
    return proc


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        IntervalSampler(0)


def test_telemetry_does_not_perturb_results(config, ilp_trace, ilp_trace_b):
    """Stats are field-for-field identical with and without the hook."""
    traces = [ilp_trace, ilp_trace_b]
    bare = _run(config, traces)
    tel = Telemetry(TelemetryConfig(sample_interval=256))
    observed = _run(config, traces, telemetry=tel)
    assert bare.cycle == observed.cycle
    assert dataclasses.asdict(bare.stats) == dataclasses.asdict(observed.stats)
    assert tel.sampler.columns is not None and len(tel.sampler.columns) > 0


def test_sample_rows_are_interval_deltas(config, ilp_trace, ilp_trace_b):
    """Committed columns are running totals; stall columns are deltas that
    sum back to the run totals."""
    tel = Telemetry(TelemetryConfig(sample_interval=200))
    proc = _run(config, [ilp_trace, ilp_trace_b], telemetry=tel)
    cols = tel.sampler.columns
    assert cols is not None

    cycles = cols.column("cycle")
    assert list(cycles) == sorted(cycles)  # monotonically increasing
    # each committed_t* column is nondecreasing (running total)
    for t in range(2):
        committed = cols.column(f"committed_t{t}")
        assert list(committed) == sorted(committed)
        assert committed[-1] <= proc.stats.committed_per_thread[t]
    # per-interval IPC is consistent with the committed deltas
    ipc0 = cols.column("ipc_t0")
    c0 = cols.column("committed_t0")
    for i in range(1, len(cols)):
        dt = cycles[i] - cycles[i - 1]
        assert ipc0[i] == pytest.approx((c0[i] - c0[i - 1]) / dt)
    # stall columns are deltas: their sum never exceeds the final totals
    for cause in STALL_CAUSES:
        total = sum(cols.column(f"stall_{cause}"))
        assert 0 <= total <= proc.stats.rename_stall_cycles[cause]


def test_dynamic_partition_columns_follow_policy(config, ilp_trace,
                                                 ilp_trace_b):
    """CDPRF runs get part_/rfoc_/starv_ columns; static policies do not."""
    traces = [ilp_trace, ilp_trace_b]
    tel_icount = Telemetry(TelemetryConfig(sample_interval=400))
    _run(config, traces, telemetry=tel_icount)
    assert not any(
        n.startswith("part_") for n in tel_icount.sampler.columns.names
    )

    tel_cdprf = Telemetry(TelemetryConfig(sample_interval=400))
    _run(config, traces, policy="cdprf", telemetry=tel_cdprf, interval=512)
    names = tel_cdprf.sampler.columns.names
    for prefix in ("part", "rfoc", "starv"):
        for k in ("int", "fp"):
            for t in range(2):
                assert f"{prefix}_{k}_t{t}" in names
    # partition sizes are live policy state: positive register counts
    assert all(v > 0 for v in tel_cdprf.sampler.columns.column("part_int_t0"))


def test_reset_measurement_drops_warmup_samples(config, ilp_trace,
                                                ilp_trace_b):
    """reset_measurement() clears collected rows and re-baselines deltas."""
    tel = Telemetry(TelemetryConfig(sample_interval=100))
    proc = Processor(
        config, make_policy("icount"), [ilp_trace, ilp_trace_b], telemetry=tel
    )
    while proc.cycle < 500:
        proc.step()
    assert len(tel.sampler.columns) > 0
    proc.reset_measurement()
    assert len(tel.sampler.columns) == 0
    assert len(tel.events) == 0
    while proc.cycle < 900 and not proc.any_done():
        proc.step()
    cols = tel.sampler.columns
    assert len(cols) > 0
    # post-reset samples only cover post-reset cycles, and the first row's
    # stall deltas cannot reference warmup state (all within one interval)
    assert cols.column("cycle")[0] > 500
    first = cols.row(0)
    for cause in STALL_CAUSES:
        assert 0 <= first[f"stall_{cause}"] <= tel.config.sample_interval * 2
