"""Telemetry through the experiment runner and the process-pool fan-out.

The contract: with a ``telemetry_dir`` set, every run exports one directory
per :class:`RunKey`, and those directories are byte-identical at any
``jobs=`` count — telemetry is collected in whatever process ran the
simulation, and the exporters contain nothing process- or time-dependent.
"""

import dataclasses
import json

import pytest

from repro.experiments import parallel
from repro.experiments.runner import ExperimentRunner, figure2_config
from repro.telemetry.export import META_JSON, exports_complete
from repro.trace.workloads import build_pool

POOL_KW = dict(
    n_uops=2500, n_ilp=1, n_mem=1, n_mix=0, n_mixes_category=0,
    categories=("ISPEC00",),
)
POLICIES = ["icount", "cssp"]
ALL_FILES = ("samples.csv", "samples.jsonl", "events.jsonl", "trace.json",
             META_JSON)


@pytest.fixture(scope="module")
def pool():
    return build_pool(**POOL_KW)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    parallel.shutdown()


def _export_dirs(base):
    return sorted(p for p in base.iterdir() if p.is_dir())


def test_exports_byte_identical_at_any_jobs_count(pool, tmp_path):
    config = figure2_config(32)
    serial = ExperimentRunner(
        "smoke", pool=pool, telemetry_dir=tmp_path / "serial"
    )
    par = ExperimentRunner(
        "smoke", pool=pool, jobs=4, telemetry_dir=tmp_path / "par"
    )

    rs = serial.sweep(config, POLICIES)
    rp = par.sweep(config, POLICIES)
    assert rs.keys() == rp.keys()
    for key in rs:
        assert dataclasses.asdict(rs[key]) == dataclasses.asdict(rp[key]), key

    sdirs = _export_dirs(tmp_path / "serial")
    pdirs = _export_dirs(tmp_path / "par")
    assert [d.name for d in sdirs] == [d.name for d in pdirs]
    assert len(sdirs) == len(POLICIES) * len(pool.workloads)
    for sd, pd in zip(sdirs, pdirs):
        for name in ALL_FILES:
            assert (sd / name).read_bytes() == (pd / name).read_bytes(), (
                f"{sd.name}/{name}"
            )


def test_cached_record_without_export_triggers_rerun(pool, tmp_path):
    """A cache hit is only honoured when its telemetry export is complete."""
    config = figure2_config(32)
    wl = pool.workloads[0]

    # populate the record cache with telemetry off
    plain = ExperimentRunner("smoke", cache_dir=tmp_path / "cache", pool=pool)
    rec = plain.run(config, "icount", wl)
    assert plain.sims_run == 1

    # same cache, telemetry on: record exists but exports do not -> re-run
    teldir = tmp_path / "tel"
    observed = ExperimentRunner(
        "smoke", cache_dir=tmp_path / "cache", pool=pool, telemetry_dir=teldir
    )
    rec2 = observed.run(config, "icount", wl)
    assert observed.sims_run == 1
    assert dataclasses.asdict(rec2) == dataclasses.asdict(rec)
    key = observed.key_for(config, "icount", wl)
    assert exports_complete(observed.telemetry_path(key))

    # now both record and exports exist -> pure cache hit
    again = ExperimentRunner(
        "smoke", cache_dir=tmp_path / "cache", pool=pool, telemetry_dir=teldir
    )
    again.run(config, "icount", wl)
    assert again.sims_run == 0


def test_worker_exports_match_meta(pool, tmp_path):
    """Worker-written meta.json agrees with the merged run records."""
    config = figure2_config(32)
    runner = ExperimentRunner(
        "smoke", pool=pool, jobs=2, telemetry_dir=tmp_path
    )
    runner.sweep(config, ["icount"])
    dirs = _export_dirs(tmp_path)
    assert len(dirs) == len(pool.workloads)
    for d in dirs:
        meta = json.loads((d / META_JSON).read_text())
        assert meta["policy"] == "icount"
        assert meta["samples"] >= 1
        assert meta["workload"]
