"""Exporter tests: determinism, format independence, trace validity."""

import csv
import io
import json

from repro.core.processor import Processor
from repro.policies import make_policy
from repro.telemetry import (
    Severity,
    Telemetry,
    TelemetryConfig,
    chrome_trace,
    export_all,
    exports_complete,
)
from repro.telemetry.export import (
    EVENTS_JSONL,
    META_JSON,
    SAMPLES_CSV,
    SAMPLES_JSONL,
    TRACE_JSON,
    events_jsonl,
    samples_csv,
    samples_jsonl,
)

ALL_FILES = (SAMPLES_CSV, SAMPLES_JSONL, EVENTS_JSONL, TRACE_JSON, META_JSON)


def _collect(config, traces, interval=250, max_cycles=1500):
    tel = Telemetry(
        TelemetryConfig(sample_interval=interval, min_severity=Severity.DEBUG)
    )
    proc = Processor(
        config, make_policy("cdprf", interval=512), list(traces), telemetry=tel
    )
    while not proc.any_done() and proc.cycle < max_cycles:
        proc.step()
    return tel


def test_repeat_runs_export_identical_bytes(config, ilp_trace, ilp_trace_b,
                                            tmp_path):
    """Same seed + config twice -> byte-identical files, all five present."""
    a = tmp_path / "a"
    b = tmp_path / "b"
    export_all(_collect(config, [ilp_trace, ilp_trace_b]), a)
    export_all(_collect(config, [ilp_trace, ilp_trace_b]), b)
    for name in ALL_FILES:
        assert (a / name).read_bytes() == (b / name).read_bytes(), name
    assert not list(a.glob("*.tmp"))  # atomic writes leave no droppings
    assert exports_complete(a) and exports_complete(b)
    assert not exports_complete(tmp_path / "missing")


def test_sampler_unaffected_by_export_format(config, ilp_trace, ilp_trace_b):
    """CSV and JSONL are two views of the same rows: rendering one does not
    change the other, and their values agree row for row."""
    tel = _collect(config, [ilp_trace, ilp_trace_b])
    csv_before = samples_csv(tel)
    jsonl_text = samples_jsonl(tel)
    assert samples_csv(tel) == csv_before  # rendering JSONL changed nothing

    csv_rows = list(csv.DictReader(io.StringIO(csv_before)))
    jsonl_rows = [json.loads(line) for line in jsonl_text.splitlines()]
    assert len(csv_rows) == len(jsonl_rows) > 0
    for crow, jrow in zip(csv_rows, jsonl_rows):
        assert set(crow) == set(jrow)
        for name, value in jrow.items():
            assert float(crow[name]) == float(value), name


def test_events_jsonl_is_flat_and_ordered(config, ilp_trace, ilp_trace_b):
    tel = _collect(config, [ilp_trace, ilp_trace_b])
    rows = [json.loads(line) for line in events_jsonl(tel).splitlines()]
    assert len(rows) == len(tel.events) > 0
    # emission order follows simulation time; starve_end is stamped with
    # the episode's last cycle (one cycle before it is detected closed),
    # so order is asserted over the directly-stamped events
    cycles = [r["cycle"] for r in rows if r["kind"] != "starve_end"]
    assert cycles == sorted(cycles)
    for row in rows:
        assert row["kind"] and row["severity"] in ("debug", "info", "warn")


def test_chrome_trace_structure(config, ilp_trace, ilp_trace_b):
    """The trace document follows the trace_event format Perfetto loads."""
    tel = _collect(config, [ilp_trace, ilp_trace_b])
    doc = chrome_trace(tel)
    evs = doc["traceEvents"]
    assert evs, "empty trace"
    # metadata names the process and one row per thread + machine row
    meta = [e for e in evs if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert "repro-sim" in names and "T0 events" in names
    assert "machine events" in names
    # counter tracks exist for IPC, per-thread x cluster IQ and partitions
    counters = {e["name"] for e in evs if e["ph"] == "C"}
    assert {"T0 IPC", "T1 IPC", "T0xC0 IQ", "C0 RF"} <= counters
    assert "T0 RF partition" in counters  # CDPRF run -> partition track
    # every event has the required keys and integer-ish timestamps
    for e in evs:
        assert "ph" in e and "pid" in e
        if e["ph"] in ("C", "i", "X"):
            assert e["ts"] >= 0
        if e["ph"] == "X":
            assert e["dur"] >= 1
    json.dumps(doc)  # serializable as-is


def test_meta_json_summarizes_collection(config, ilp_trace, ilp_trace_b,
                                         tmp_path):
    tel = _collect(config, [ilp_trace, ilp_trace_b])
    export_all(tel, tmp_path, meta={"policy": "cdprf", "workload": "w"})
    meta = json.loads((tmp_path / META_JSON).read_text())
    assert meta["samples"] == len(tel.sampler.columns)
    assert meta["events"] == len(tel.events)
    assert meta["sample_interval"] == tel.config.sample_interval
    assert meta["policy"] == "cdprf" and meta["workload"] == "w"
    assert meta["columns"] == list(tel.sampler.columns.names)
