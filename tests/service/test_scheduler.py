"""Token-bucket, admission and weighted max-min scheduling tests.

Everything runs against an injected fake clock, so rate-limit and
fairness behaviour is deterministic — no sleeps, no wall-clock."""

import pytest

from repro.service.scheduler import (
    FairScheduler,
    QueueFull,
    RateLimited,
    TokenBucket,
    parse_tenants,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# -- parse_tenants -----------------------------------------------------------


def test_parse_tenants():
    assert parse_tenants("alice:3,bob:1") == {"alice": 3.0, "bob": 1.0}
    assert parse_tenants("alice") == {"alice": 1.0}
    assert parse_tenants("a:0.5, b") == {"a": 0.5, "b": 1.0}


@pytest.mark.parametrize(
    "value", ["", "  ", ":3", "a:x", "a:0", "a:-1", "a,a"]
)
def test_parse_tenants_rejects_malformed(value):
    with pytest.raises(ValueError):
        parse_tenants(value)


# -- token bucket ------------------------------------------------------------


def test_token_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    wait = bucket.try_acquire()
    assert wait == pytest.approx(0.5)  # 1 token at 2 tokens/s
    clock.advance(0.5)
    assert bucket.try_acquire() == 0.0
    # refill never exceeds burst capacity
    clock.advance(100.0)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.5)


# -- admission ---------------------------------------------------------------


def test_rate_limited_admission():
    clock = FakeClock()
    sched = FairScheduler({"a": 1.0}, rate=1.0, burst=1.0, clock=clock)
    sched.admit("a", "job1")
    with pytest.raises(RateLimited) as exc:
        sched.admit("a", "job2")
    assert exc.value.tenant == "a"
    assert exc.value.retry_after == pytest.approx(1.0)
    clock.advance(1.0)
    sched.admit("a", "job2")  # tokens refilled
    # limited=False (restart recovery) bypasses the bucket entirely
    sched.admit("a", "job3", limited=False)
    assert sched.tenants["a"].rejected == 1


def test_queue_bound():
    sched = FairScheduler({"a": 1.0}, rate=None, max_queue=2)
    sched.admit("a", "j1")
    sched.admit("a", "j2")
    with pytest.raises(QueueFull):
        sched.admit("a", "j3")
    # recovery bypasses the rate limit but never the queue bound
    with pytest.raises(QueueFull):
        sched.admit("a", "j3", limited=False)


def test_unknown_tenants_auto_register_at_weight_one():
    sched = FairScheduler(rate=None)
    sched.admit("walkin", "j")
    assert sched.tenants["walkin"].weight == 1.0


# -- weighted max-min slot scheduling ----------------------------------------


def fill_slots(sched, slots):
    """Dispatch until the pool is full; returns per-tenant slot counts."""
    for _ in range(slots):
        tenant = sched.pick()
        assert tenant is not None
        sched.on_dispatch(tenant)
    return {name: s.in_use for name, s in sched.tenants.items()}


def test_saturated_shares_match_weights():
    sched = FairScheduler({"gold": 3.0, "silver": 1.0}, rate=None)
    for i in range(40):
        sched.admit("gold", f"g{i}")
        sched.admit("silver", f"s{i}")
    assert fill_slots(sched, 4) == {"gold": 3, "silver": 1}


def test_equal_weights_round_robin():
    sched = FairScheduler({"a": 1.0, "b": 1.0}, rate=None)
    for i in range(10):
        sched.admit("a", f"a{i}")
        sched.admit("b", f"b{i}")
    assert fill_slots(sched, 4) == {"a": 2, "b": 2}


def test_idle_capacity_redistributes():
    """A lone backlogged tenant takes the whole pool (work conservation)."""
    sched = FairScheduler({"gold": 3.0, "silver": 1.0}, rate=None)
    for i in range(10):
        sched.admit("silver", f"s{i}")
    assert fill_slots(sched, 4) == {"gold": 0, "silver": 4}


def test_share_rebalances_after_completions():
    sched = FairScheduler({"gold": 3.0, "silver": 1.0}, rate=None)
    for i in range(40):
        sched.admit("gold", f"g{i}")
        sched.admit("silver", f"s{i}")
    fill_slots(sched, 4)
    # a gold slot frees; gold is still the most under-served -> gold again
    sched.on_complete(sched.tenants["gold"], elapsed=1.0)
    assert sched.pick() is sched.tenants["gold"]
    # a silver slot frees with gold at its share -> silver gets it back
    sched.on_dispatch(sched.tenants["gold"])
    sched.on_complete(sched.tenants["silver"], elapsed=1.0)
    assert sched.pick() is sched.tenants["silver"]


def test_vtime_breaks_ties_toward_less_served():
    sched = FairScheduler({"a": 1.0, "b": 1.0}, rate=None)
    sched.admit("a", "a0")
    sched.admit("b", "b0")
    sched.tenants["a"].vtime = 5.0  # a has consumed more service time
    assert sched.pick() is sched.tenants["b"]


def test_pick_honors_ready_filter():
    sched = FairScheduler({"a": 1.0, "b": 1.0}, rate=None)
    sched.admit("a", {"ready": False})
    sched.admit("b", {"ready": True})
    picked = sched.pick(ready=lambda p: p["ready"])
    assert picked is sched.tenants["b"]
    assert sched.pick(ready=lambda p: False) is None


def test_remove_and_queue_ops():
    sched = FairScheduler({"a": 1.0}, rate=None)
    sched.admit("a", "j1")
    sched.admit("a", "j2")
    state = sched.tenants["a"]
    assert sched.head(state) == "j1"
    assert sched.remove(state, "j2")
    assert not sched.remove(state, "j2")
    assert sched.pop_head(state) == "j1"
    assert sched.pick() is None


def test_snapshot_shape():
    sched = FairScheduler({"a": 2.0}, rate=5.0)
    sched.admit("a", "j")
    snap = sched.snapshot()
    assert snap["queued_jobs"] == 1
    assert snap["tenants"]["a"]["weight"] == 2.0
    assert snap["tenants"]["a"]["admitted"] == 1
