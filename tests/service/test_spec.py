"""JobSpec validation, canonicalization and content-key tests."""

import pytest

from repro.experiments.runner import figure2_config
from repro.service.spec import JobSpec, SpecError

SWEEP = {
    "scale": "smoke",
    "policies": ["icount", "cssp"],
    "categories": ["ISPEC00"],
    "iq_entries": 32,
    "unbounded_regs": True,
    "unbounded_rob": True,
}


def key(kind, body):
    return JobSpec.from_json(kind, body).content_key()


def test_canonicalization_is_order_and_duplicate_independent():
    shuffled = dict(SWEEP, policies=["cssp", "icount", "icount"])
    assert key("sweep", SWEEP) == key("sweep", shuffled)


def test_content_key_tracks_the_simulated_work():
    base = key("sweep", SWEEP)
    assert key("sweep", dict(SWEEP, iq_entries=48)) != base
    assert key("sweep", dict(SWEEP, policies=["icount"])) != base
    assert key("sweep", dict(SWEEP, scale="quick")) != base
    assert key("sweep", dict(SWEEP, stop="all_done")) != base
    assert key("sweep", dict(SWEEP, unbounded_rob=False)) != base


def test_config_matches_figure2_config():
    spec = JobSpec.from_json("sweep", SWEEP)
    assert spec.config().digest() == figure2_config(32).digest()


def test_run_kind_roundtrip_and_index():
    body = {
        "scale": "smoke",
        "policy": "icount",
        "category": "ISPEC00",
        "index": 1,
    }
    spec = JobSpec.from_json("run", body)
    assert spec.policies == ("icount",)
    assert spec.categories == ("ISPEC00",)
    assert JobSpec.from_json("run", spec.to_json()) == spec
    assert key("run", body) != key("run", dict(body, index=2))


def test_sweep_roundtrip():
    spec = JobSpec.from_json("sweep", SWEEP)
    assert JobSpec.from_json("sweep", spec.to_json()) == spec


@pytest.mark.parametrize(
    "body",
    [
        {"policies": ["notapolicy"]},
        {"categories": ["NOPE"]},
        {"scale": "galactic"},
        {"iq_entries": 0},
        {"iq_entries": "many"},
        {"unbounded_regs": "yes"},
        {"stop": "whenever"},
        {"policies": []},
        {"frobnicate": 1},
        {"index": 0},  # sweep jobs have no index field
    ],
)
def test_bad_sweep_bodies_raise_spec_error(body):
    with pytest.raises(SpecError):
        JobSpec.from_json("sweep", body)


def test_run_kind_needs_exactly_one_policy_and_category():
    with pytest.raises(SpecError):
        JobSpec.from_json("run", {"policies": ["icount", "cssp"],
                                  "category": "ISPEC00"})
    with pytest.raises(SpecError):
        JobSpec.from_json("run", {"policy": "icount"})


def test_unknown_kind_rejected():
    with pytest.raises(SpecError):
        JobSpec.from_json("batch", {})


def test_workload_selection(tmp_path):
    from repro.experiments.runner import ExperimentRunner

    pool = ExperimentRunner("smoke").pool
    sweep = JobSpec.from_json("sweep", SWEEP)
    names = [w.name for w in sweep.workloads(pool)]
    assert names == [w.name for w in pool.by_category("ISPEC00")]
    run = JobSpec.from_json(
        "run", {"policy": "icount", "category": "ISPEC00", "index": 0,
                "scale": "smoke"}
    )
    assert [w.name for w in run.workloads(pool)] == [names[0]]
