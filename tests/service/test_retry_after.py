"""Defensive Retry-After parsing in the service client.

``Retry-After`` is spec-legal as either delta-seconds or an HTTP-date
(RFC 9110 §10.2.3); a proxy in front of the service may rewrite the
numeric hint the server sends into a date, or into garbage.  The client
must degrade an unparsable hint to "no hint" — raising the promised
:class:`ServiceError`, never a bare ``ValueError`` from ``float()``.
"""

from __future__ import annotations

import email.utils
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.service.client import ServiceClient, ServiceError, _parse_retry_after

# -- unit: the parser ---------------------------------------------------------


def test_numeric_delta_seconds():
    assert _parse_retry_after("2.5") == 2.5
    assert _parse_retry_after(7) == 7.0
    assert _parse_retry_after(0) == 0.0


def test_negative_delta_clamps_to_zero():
    assert _parse_retry_after("-3") == 0.0


def test_http_date_in_the_future():
    value = email.utils.formatdate(time.time() + 60, usegmt=True)
    got = _parse_retry_after(value)
    assert got is not None
    assert 0 < got <= 61


def test_http_date_in_the_past_clamps_to_zero():
    value = email.utils.formatdate(time.time() - 60, usegmt=True)
    assert _parse_retry_after(value) == 0.0


@pytest.mark.parametrize(
    "value",
    [None, "", "soon", "Wed, 99 Xxx 2026", "1,5", [], {}],
)
def test_unparsable_hints_are_none(value):
    assert _parse_retry_after(value) is None


# -- integration: a 429 with garbage hints still raises ServiceError ----------


class _Stubborn429(BaseHTTPRequestHandler):
    """Answers every POST with a 429 carrying unparsable hints."""

    def do_POST(self):  # noqa: N802 - http.server API
        body = json.dumps(
            {"error": "busy", "retry_after": "in a little while"}
        ).encode()
        self.send_response(429)
        self.send_header("Retry-After", "when the stars align")
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet
        pass


def test_garbage_hints_raise_service_error_not_valueerror():
    server = HTTPServer(("127.0.0.1", 0), _Stubborn429)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        c = ServiceClient(port=server.server_address[1])
        with pytest.raises(ServiceError) as exc:
            c.submit_run({"policy": "icount"})
        assert exc.value.status == 429
        assert exc.value.retry_after is None  # hint degraded, not fatal
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_date_header_hint_is_used_when_body_hint_is_garbage():
    class _DateHint(_Stubborn429):
        def do_POST(self):  # noqa: N802
            body = json.dumps(
                {"error": "busy", "retry_after": "garbage"}
            ).encode()
            self.send_response(429)
            self.send_header(
                "Retry-After",
                email.utils.formatdate(time.time() + 30, usegmt=True),
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    server = HTTPServer(("127.0.0.1", 0), _DateHint)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        c = ServiceClient(port=server.server_address[1])
        with pytest.raises(ServiceError) as exc:
            c.submit_run({"policy": "icount"})
        assert exc.value.retry_after is not None
        assert 0 < exc.value.retry_after <= 31
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
