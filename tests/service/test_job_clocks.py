"""Job duration discipline: wall timestamps for display, monotonic for math.

An NTP step (or DST adjustment) moves ``time.time`` arbitrarily, so any
duration computed from wall timestamps can come out negative or wildly
wrong.  :class:`Job` therefore stamps both clocks and derives
``queue_wait_s``/``run_s`` exclusively from the injected monotonic clock
— these tests drive both clocks by hand, including a wall clock that
steps *backward* mid-job.
"""

from __future__ import annotations

from repro.service.jobs import Job
from repro.service.spec import JobSpec


def _spec():
    return JobSpec.from_json(
        "run", {"policy": "icount", "category": "ISPEC00", "scale": "smoke"}
    )


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


def _job(wall, mono):
    return Job(_spec(), tenant="t", clock=wall, monotonic=mono)


def test_durations_come_from_monotonic_not_wall():
    wall, mono = FakeClock(1_700_000_000.0), FakeClock(100.0)
    job = _job(wall, mono)

    wall.t -= 3600.0  # NTP step: wall jumps an hour into the past
    mono.t += 2.0
    job.mark_started()

    wall.t += 7200.0  # and forward two hours
    mono.t += 5.0
    job.finish("done", result={})

    assert job.queue_wait_s == 2.0
    assert job.run_s == 5.0
    # the wall timestamps still reflect what the fake wall clock said
    assert job.started == 1_700_000_000.0 - 3600.0
    assert job.finished == job.started + 7200.0


def test_durations_none_until_the_phase_happened():
    job = _job(FakeClock(), FakeClock())
    assert job.queue_wait_s is None
    assert job.run_s is None
    job.mark_started()
    assert job.queue_wait_s == 0.0
    assert job.run_s is None


def test_to_json_exposes_monotonic_durations():
    wall, mono = FakeClock(), FakeClock(50.0)
    job = _job(wall, mono)
    mono.t += 1.5
    job.mark_started()
    mono.t += 4.0
    job.finish("done", result={})
    doc = job.to_json()
    assert doc["queue_wait_s"] == 1.5
    assert doc["run_s"] == 4.0


def test_follower_reports_primary_durations():
    wall, mono = FakeClock(), FakeClock(0.0)
    primary = _job(wall, mono)
    follower = _job(wall, mono)
    primary.attach_follower(follower)

    mono.t += 3.0
    primary.mark_started()
    mono.t += 2.0
    primary.finish("done", result={"ok": True})

    doc = follower.to_json()
    assert doc["deduped"] is True
    assert doc["queue_wait_s"] == 3.0  # the primary's wait: one execution
    assert doc["run_s"] == 2.0
    assert follower.state == "done"
