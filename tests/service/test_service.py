"""End-to-end service tests over real HTTP on a loopback port.

A module-scoped :class:`BackgroundService` (thread executor, smoke
scale, 2 slots) serves most tests; rate-limit and cancel tests build
their own short-lived servers with the specific knobs they exercise.
Each test uses a distinct machine configuration (``iq_entries``) so the
shared result cache cannot leak work between tests except where a test
asserts exactly that.
"""

import dataclasses
import json

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.service import (
    BackgroundService,
    ServiceClient,
    ServiceError,
    ServiceSettings,
)
from repro.service.spec import JobSpec


def sweep_body(iq=32, policies=("icount", "cssp")):
    return {
        "scale": "smoke",
        "policies": list(policies),
        "categories": ["ISPEC00"],
        "iq_entries": iq,
        "unbounded_regs": True,
        "unbounded_rob": True,
    }


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("service-cache")


@pytest.fixture(scope="module")
def server(cache_dir):
    settings = ServiceSettings(
        port=0,
        cache_dir=cache_dir,
        slots=2,
        executor="thread",
        default_scale="smoke",
        rate=None,
    )
    with BackgroundService(settings) as bg:
        yield bg


def client(server, tenant="default"):
    return ServiceClient(port=server.port, tenant=tenant)


# -- basics ------------------------------------------------------------------


def test_health_and_stats(server):
    c = client(server)
    assert c.health()["ok"] is True
    stats = c.stats()
    assert stats["slots"] == 2
    assert stats["executor"] == "thread"
    assert "scheduler" in stats


def test_bad_spec_is_400(server):
    with pytest.raises(ServiceError) as exc:
        client(server).submit_sweep({"policies": ["notapolicy"]})
    assert exc.value.status == 400
    assert "notapolicy" in str(exc.value)


def test_unknown_job_is_404(server):
    with pytest.raises(ServiceError) as exc:
        client(server).job("jdeadbeef")
    assert exc.value.status == 404


def test_unknown_route_is_404(server):
    with pytest.raises(ServiceError) as exc:
        client(server)._request("GET", "/v2/nope")
    assert exc.value.status == 404


# -- byte identity with the direct runner ------------------------------------


def test_sweep_results_byte_identical_to_direct_runner(
    server, cache_dir, tmp_path
):
    """The acceptance bar: HTTP results == direct ExperimentRunner results.

    The direct path runs the same sweep serially into its own cache dir;
    every cache file the service produced must be byte-for-byte equal,
    and the HTTP result document must contain exactly those records.
    """
    body = sweep_body(iq=32)
    c = client(server, tenant="ident")
    job = c.submit_sweep(body)
    done = c.wait(job["id"], timeout=600)
    assert done["state"] == "done"
    assert done["total"] == done["done"] == 6

    spec = JobSpec.from_json("sweep", body)
    direct_dir = tmp_path / "direct-cache"
    runner = ExperimentRunner("smoke", cache_dir=direct_dir)
    config = spec.config()
    for wl in spec.workloads(runner.pool):
        for policy in spec.policies:
            runner.run(config, policy, wl)

    direct_files = sorted(p.name for p in direct_dir.glob("*.json"))
    assert len(direct_files) == 6
    for name in direct_files:
        assert (cache_dir / name).read_bytes() == (
            direct_dir / name
        ).read_bytes(), name

    # and the HTTP result is exactly those files, parsed
    records = done["result"]["records"]
    assert len(records) == 6
    for wl in spec.workloads(runner.pool):
        for policy in spec.policies:
            key = runner.key_for(config, policy, wl)
            assert records[f"{policy}|{wl.category}|{wl.name}"] == json.loads(
                (direct_dir / key.filename()).read_text()
            )


def test_resubmit_is_all_cache_hits(server):
    c = client(server, tenant="ident")
    done = c.wait(c.submit_sweep(sweep_body(iq=32))["id"], timeout=600)
    assert done["executed"] == 0
    assert done["hits"] == 6


def test_run_job_matches_direct_run_single_workload(server, cache_dir):
    c = client(server)
    body = {
        "scale": "smoke",
        "policy": "icount",
        "category": "ISPEC00",
        "index": 0,
        "iq_entries": 36,
        "unbounded_regs": True,
        "unbounded_rob": True,
    }
    done = c.wait(c.submit_run(body)["id"], timeout=600)
    assert done["total"] == 1
    (record,) = done["result"]["records"].values()
    spec = JobSpec.from_json("run", body)
    runner = ExperimentRunner("smoke")
    (wl,) = spec.workloads(runner.pool)
    direct = runner.run(spec.config(), "icount", wl)
    assert record == {
        key: (list(val) if isinstance(val, tuple) else val)
        for key, val in dataclasses.asdict(direct).items()
    }


# -- dedup -------------------------------------------------------------------


def test_identical_sweeps_from_two_tenants_run_once(server, cache_dir):
    """The dedup acceptance test: N identical jobs, each item runs once."""
    body = sweep_body(iq=48, policies=("stall", "cdprf"))
    alice, bob = client(server, "alice"), client(server, "bob")
    job_a = alice.submit_sweep(body)
    job_b = bob.submit_sweep(body)

    assert job_b["deduped"] is True
    assert job_b["primary"] == job_a["id"]

    done_a = alice.wait(job_a["id"], timeout=600)
    done_b = bob.wait(job_b["id"], timeout=600)
    assert done_a["executed"] == 6
    assert done_b["deduped"] is True
    # the follower reports the primary's execution and the same records
    assert done_b["result"]["records"] == done_a["result"]["records"]

    # exactly-once at the pool: sweep_trace has each (policy, workload)
    # of this sweep exactly once
    rows = [
        json.loads(line)
        for line in (cache_dir / "sweep_trace.jsonl").read_text().splitlines()
    ]
    mine = [
        (r["policy"], r["workload"])
        for r in rows
        if r["policy"] in ("stall", "cdprf")
    ]
    assert len(mine) == 6
    assert len(set(mine)) == 6

    assert client(server).stats()["jobs_deduped"] >= 1


# -- streaming ---------------------------------------------------------------


def test_event_stream_orders_and_terminates(server):
    c = client(server, tenant="stream")
    job = c.submit_sweep(sweep_body(iq=40))
    events = list(c.stream(job["id"], timeout=600))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "queued"
    assert "prepared" in kinds and "start" in kinds
    assert kinds[-1] == "done"
    items = [e for e in events if e["event"] == "item"]
    assert len(items) == 6
    dones = [e["done"] for e in items]
    assert dones == sorted(dones) and dones[-1] == 6
    # a late subscriber replays the full history identically
    assert [e["event"] for e in c.stream(job["id"], timeout=60)] == kinds


# -- admission control over HTTP ---------------------------------------------


def test_rate_limit_answers_429_with_retry_after(tmp_path):
    settings = ServiceSettings(
        port=0, cache_dir=tmp_path, slots=1, executor="thread",
        default_scale="smoke", rate=1.0, burst=1.0,
    )
    with BackgroundService(settings) as bg:
        c = ServiceClient(port=bg.port, tenant="bursty")
        c.submit_sweep(sweep_body(iq=60))
        with pytest.raises(ServiceError) as exc:
            c.submit_sweep(sweep_body(iq=61))
        assert exc.value.status == 429
        assert exc.value.retry_after is not None
        assert exc.value.retry_after > 0
        # identical resubmission coalesces instead of rate-limiting
        again = c.submit_sweep(sweep_body(iq=60))
        assert again["deduped"] is True


# -- cancellation ------------------------------------------------------------


def test_cancel_stops_unlaunched_work(tmp_path):
    settings = ServiceSettings(
        port=0, cache_dir=tmp_path, slots=1, executor="thread",
        default_scale="smoke", rate=None,
    )
    body = sweep_body(
        iq=52, policies=("icount", "cssp", "stall", "cdprf")
    )  # 12 items through 1 slot
    with BackgroundService(settings) as bg:
        c = ServiceClient(port=bg.port, tenant="quitter")
        job = c.submit_sweep(body)
        cancelled = c.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        with pytest.raises(ServiceError, match="cancelled"):
            c.wait(job["id"], timeout=60)
        assert c.stats()["executed_items"] < 12
        # the server stays healthy for later jobs
        done = c.wait(
            c.submit_sweep(sweep_body(iq=52, policies=("icount",)))["id"],
            timeout=600,
        )
        assert done["state"] == "done"
