"""Coordinator/worker behaviour: dispatch, liveness, exactly-once.

These tests run real sockets on loopback with workers in threads (the
subprocess + SIGKILL variant lives in ``scripts/fabric_smoke.py``).  The
load-bearing assertions are the failure-path ones: a dead or silent
worker loses its leases to the survivors, duplicate results are
discarded, and the finished cache tree is byte-identical to a serial
run's.
"""

from __future__ import annotations

import dataclasses
import socket
import threading
import time

import pytest

import repro.fabric as fabric
from repro.experiments import parallel
from repro.experiments.journal import JOURNAL_NAME
from repro.experiments.runner import ExperimentRunner, figure2_config
from repro.fabric import protocol
from repro.fabric.coordinator import FabricHub, FabricSettings
from repro.fabric.worker import Worker
from repro.trace.workloads import build_pool

POOL_KW = dict(
    n_uops=2500, n_ilp=1, n_mem=1, n_mix=0, n_mixes_category=0,
    categories=("ISPEC00",),
)
POLICIES = ["icount", "cssp"]


@pytest.fixture(scope="module")
def pool():
    return build_pool(**POOL_KW)


@pytest.fixture(scope="module", autouse=True)
def _teardown():
    yield
    fabric.shutdown()
    parallel.shutdown()


def _worker_thread(port: int, **kw) -> tuple[Worker, threading.Thread]:
    worker = Worker("127.0.0.1", port, heartbeat=0.1, **kw)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _serial_reference(pool, tmp_path):
    ref_dir = tmp_path / "serial"
    ref = ExperimentRunner("smoke", pool=pool, cache_dir=ref_dir, jobs=1)
    records = ref.sweep(figure2_config(32), POLICIES)
    return ref_dir, records


def _cache_tree(cache_dir):
    return {
        p.name: p.read_bytes()
        for p in cache_dir.glob("*.json")
        if p.name != "sweep_trace.jsonl"
    }


# -- executor resolution --------------------------------------------------------


def test_resolve_executor_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    assert fabric.resolve_executor(None) == "local"
    monkeypatch.setenv("REPRO_EXECUTOR", "tcp")
    assert fabric.resolve_executor(None) == "tcp"
    assert fabric.resolve_executor("local") == "local"  # arg wins


def test_resolve_executor_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError, match="known executors"):
        fabric.resolve_executor("mpi")
    monkeypatch.setenv("REPRO_EXECUTOR", "carrier-pigeon")
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        fabric.resolve_executor(None)


def test_runner_rejects_unknown_executor(pool):
    with pytest.raises(ValueError):
        ExperimentRunner("smoke", pool=pool, executor="nope")


# -- end to end ------------------------------------------------------------------


def test_tcp_sweep_is_byte_identical_to_serial(pool, tmp_path):
    serial_dir, expected = _serial_reference(pool, tmp_path)

    settings = FabricSettings(port=0, lease_timeout=30.0)
    tcp_dir = tmp_path / "tcp"
    runner = ExperimentRunner(
        "smoke", pool=pool, cache_dir=tcp_dir, executor="tcp", fabric=settings
    )
    try:
        hub = fabric.get_hub(settings)
        _worker_thread(hub.port)
        _worker_thread(hub.port)
        got = runner.sweep(figure2_config(32), POLICIES)
    finally:
        fabric.shutdown()

    assert got.keys() == expected.keys()
    for key in expected:
        assert dataclasses.asdict(got[key]) == dataclasses.asdict(
            expected[key]
        ), key
    assert _cache_tree(tcp_dir) == _cache_tree(serial_dir)
    # journal complete and duplicate-free
    lines = (tcp_dir / JOURNAL_NAME).read_text().splitlines()
    assert len(lines) == len(set(lines)) == len(expected)


# -- failure paths ---------------------------------------------------------------


class _SilentLeech(threading.Thread):
    """Registers with a big window, hoards leases, never speaks again."""

    def __init__(self, port: int) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.leased = 0
        self._done = threading.Event()

    def run(self) -> None:
        sock = socket.create_connection(("127.0.0.1", self.port))
        try:
            protocol.send_msg(sock, protocol.hello(0, "leech", 8))
            sock.settimeout(0.2)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not self._done.is_set():
                try:
                    msg = protocol.recv_msg(sock)
                except (TimeoutError, socket.timeout):
                    continue
                except OSError:
                    return  # coordinator dropped us: mission accomplished
                if msg is None:
                    return
                if msg["type"] == "item":
                    self.leased += 1
        finally:
            self._done.set()
            sock.close()


def test_silent_worker_leases_expire_and_requeue(pool, tmp_path):
    """A worker that hoards items and goes silent loses them after
    lease_timeout; the survivor finishes the whole sweep."""
    hub = FabricHub(FabricSettings(port=0, lease_timeout=0.6))
    runner = ExperimentRunner(
        "smoke", pool=pool, cache_dir=tmp_path / "cache"
    )
    items = parallel.sweep_items(
        runner, figure2_config(32), POLICIES, list(pool)
    )
    leech = _SilentLeech(hub.port)
    leech.start()

    def _late_worker():
        # join only after the leech has hoarded, so the requeue matters
        deadline = time.monotonic() + 5
        while leech.leased == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        _worker_thread(hub.port)

    threading.Thread(target=_late_worker, daemon=True).start()
    try:
        executed = hub.run_items(runner, items, label="expiry")
    finally:
        hub.close()
    assert executed == len(items)
    assert leech.leased > 0
    assert hub.drops >= 1
    assert hub.requeued >= leech.leased
    lines = (tmp_path / "cache" / JOURNAL_NAME).read_text().splitlines()
    assert len(lines) == len(set(lines)) == len(items)


def test_worker_death_requeues_to_survivor(pool, tmp_path):
    """An abruptly-closed connection (worker crash) re-queues its leases
    immediately — no need to wait for the lease timeout."""
    hub = FabricHub(FabricSettings(port=0, lease_timeout=30.0))
    runner = ExperimentRunner(
        "smoke", pool=pool, cache_dir=tmp_path / "cache"
    )
    items = parallel.sweep_items(
        runner, figure2_config(32), POLICIES, list(pool)
    )
    leech = _SilentLeech(hub.port)  # long timeout: only EOF can free these

    def _kill_leech_then_help():
        deadline = time.monotonic() + 5
        while leech.leased == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        leech._done.set()  # closes the socket = crash
        _worker_thread(hub.port)

    leech.start()
    threading.Thread(target=_kill_leech_then_help, daemon=True).start()
    try:
        executed = hub.run_items(runner, items, label="crash")
    finally:
        hub.close()
    assert executed == len(items)
    assert hub.drops >= 1
    assert runner.sims_run == len(items)


class _DoubleSender(threading.Thread):
    """A worker that sends every result twice (died-after-compute replay)."""

    def __init__(self, port: int) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.sent = 0

    def run(self) -> None:
        sock = socket.create_connection(("127.0.0.1", self.port))
        try:
            protocol.send_msg(sock, protocol.hello(0, "double", 1))
            while True:
                msg = protocol.recv_msg(sock)
                if msg is None or msg["type"] == "shutdown":
                    return
                if msg["type"] != "item":
                    continue
                item = protocol.decode_item(msg["item"])
                key, rec, seconds, pid = parallel._run_item(item)
                reply = protocol.result_msg(key, rec, seconds, pid)
                protocol.send_msg(sock, reply)
                protocol.send_msg(sock, reply)
                self.sent += 2
        except OSError:
            return
        finally:
            sock.close()


def test_duplicate_results_are_discarded(pool, tmp_path):
    hub = FabricHub(FabricSettings(port=0, lease_timeout=30.0))
    runner = ExperimentRunner(
        "smoke", pool=pool, cache_dir=tmp_path / "cache"
    )
    items = parallel.sweep_items(
        runner, figure2_config(32), POLICIES, list(pool)
    )
    doubler = _DoubleSender(hub.port)
    doubler.start()
    try:
        executed = hub.run_items(runner, items, label="dupes")
    finally:
        hub.close()
    assert doubler.sent == 2 * len(items)
    assert executed == len(items)  # every duplicate discarded
    assert runner.sims_run == len(items)
    lines = (tmp_path / "cache" / JOURNAL_NAME).read_text().splitlines()
    assert len(lines) == len(set(lines)) == len(items)


def test_version_mismatch_is_refused(pool, tmp_path):
    hub = FabricHub(FabricSettings(port=0))
    runner = ExperimentRunner(
        "smoke", pool=pool, cache_dir=tmp_path / "cache"
    )
    items = parallel.sweep_items(
        runner, figure2_config(32), POLICIES[:1], list(pool)[:1]
    )
    refused = {}

    def _old_worker():
        sock = socket.create_connection(("127.0.0.1", hub.port))
        try:
            bad = dict(protocol.hello(0, "old", 1), version=999)
            protocol.send_msg(sock, bad)
            refused["reply"] = protocol.recv_msg(sock)
        except OSError:
            pass
        finally:
            sock.close()
            _worker_thread(hub.port)  # a good worker finishes the sweep

    threading.Thread(target=_old_worker, daemon=True).start()
    try:
        executed = hub.run_items(runner, items, label="version")
    finally:
        hub.close()
    assert executed == len(items)
    reply = refused.get("reply")
    assert reply is not None and reply["type"] == "error"
    assert "version" in reply["error"]


def test_worker_error_fails_the_sweep(pool, tmp_path):
    hub = FabricHub(FabricSettings(port=0))
    runner = ExperimentRunner(
        "smoke", pool=pool, cache_dir=tmp_path / "cache"
    )
    items = parallel.sweep_items(
        runner, figure2_config(32), POLICIES[:1], list(pool)[:1]
    )

    def _broken_worker():
        sock = socket.create_connection(("127.0.0.1", hub.port))
        try:
            protocol.send_msg(sock, protocol.hello(0, "broken", 1))
            while True:
                msg = protocol.recv_msg(sock)
                if msg is None or msg["type"] == "shutdown":
                    return
                if msg["type"] == "item":
                    item = protocol.decode_item(msg["item"])
                    protocol.send_msg(
                        sock, protocol.error_msg(item.key, "boom")
                    )
        except OSError:
            return
        finally:
            sock.close()

    threading.Thread(target=_broken_worker, daemon=True).start()
    try:
        with pytest.raises(RuntimeError, match="boom"):
            hub.run_items(runner, items, label="boom")
    finally:
        hub.close()
