"""Wire-protocol round-trips: framing and the dataclass codecs.

Cache identity must not drift across the wire — a decoded
:class:`WorkItem` has to *equal* the encoded one (frozen dataclasses
compare by value) and its config digest has to match, or a remote result
would land under a different key than a local one.
"""

from __future__ import annotations

import socket

import pytest

from repro.experiments.parallel import sweep_items
from repro.experiments.runner import ExperimentRunner, figure2_config
from repro.fabric import protocol
from repro.trace.workloads import build_pool

POOL_KW = dict(
    n_uops=2500, n_ilp=1, n_mem=1, n_mix=0, n_mixes_category=0,
    categories=("ISPEC00",),
)


@pytest.fixture(scope="module")
def items():
    pool = build_pool(**POOL_KW)
    runner = ExperimentRunner("smoke", pool=pool)
    return sweep_items(
        runner, figure2_config(32), ["icount", "cdprf"], list(pool)
    )


# -- framing ------------------------------------------------------------------


def test_pack_feed_roundtrip():
    msgs = [
        protocol.hello(pid=7, host="box", window=2),
        protocol.HEARTBEAT,
        {"type": "x", "payload": ["ünïcode", 1.5, None, {"k": "v"}]},
    ]
    decoder = protocol.FrameDecoder()
    out = decoder.feed(b"".join(protocol.pack(m) for m in msgs))
    assert out == msgs


def test_feed_handles_arbitrary_byte_splits():
    msgs = [{"type": "t", "n": i, "pad": "x" * i} for i in range(20)]
    stream = b"".join(protocol.pack(m) for m in msgs)
    for chunk in (1, 2, 3, 5, 7, 64):
        decoder = protocol.FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.feed(stream[i:i + chunk]))
        assert out == msgs, f"chunk size {chunk}"


def test_feed_rejects_garbage_and_untyped_frames():
    decoder = protocol.FrameDecoder()
    with pytest.raises(protocol.ProtocolError):
        decoder.feed(protocol._HEADER.pack(5) + b"{!!!}")
    decoder = protocol.FrameDecoder()
    with pytest.raises(protocol.ProtocolError):
        decoder.feed(protocol._HEADER.pack(2) + b"[]")


def test_feed_rejects_oversized_frame_header():
    decoder = protocol.FrameDecoder()
    with pytest.raises(protocol.ProtocolError):
        decoder.feed(protocol._HEADER.pack(protocol.MAX_FRAME + 1))


def test_blocking_send_recv_over_socketpair():
    a, b = socket.socketpair()
    try:
        msgs = [protocol.hello(1, "h", 1), {"type": "z", "big": "y" * 10000}]
        for m in msgs:
            protocol.send_msg(a, m)
        got = [protocol.recv_msg(b) for _ in msgs]
        assert got == msgs
        a.close()
        assert protocol.recv_msg(b) is None  # clean EOF -> None
    finally:
        b.close()


def test_recv_raises_on_mid_frame_eof():
    a, b = socket.socketpair()
    try:
        a.sendall(protocol.pack({"type": "t"})[:-2])
        a.close()
        with pytest.raises(protocol.ProtocolError):
            protocol.recv_msg(b)
    finally:
        b.close()


# -- dataclass codecs ----------------------------------------------------------


def test_work_item_roundtrip_is_equal(items):
    assert items  # 2 policies x 2 workloads
    for item in items:
        decoded = protocol.decode_item(protocol.encode_item(item))
        assert decoded == item
        assert decoded.key == item.key
        assert decoded.config.digest() == item.config.digest()


def test_item_survives_json_wire_format(items):
    decoder = protocol.FrameDecoder()
    (msg,) = decoder.feed(protocol.pack(protocol.item_msg(items[0])))
    assert protocol.decode_item(msg["item"]) == items[0]


def test_record_roundtrip(items):
    from repro.experiments.parallel import _run_item

    key, rec, seconds, pid = _run_item(items[0])
    msg = protocol.result_msg(key, rec, seconds, pid)
    decoder = protocol.FrameDecoder()
    (wire,) = decoder.feed(protocol.pack(msg))
    assert protocol.decode_key(wire["key"]) == key
    decoded = protocol.decode_record(wire["record"])
    assert decoded == rec
    assert isinstance(decoded.committed_per_thread, tuple)
