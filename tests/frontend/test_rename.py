"""Rename table (mapping + replica) tests."""

import pytest

from repro.backend.regfile import READY_EVERYWHERE
from repro.frontend.rename import Mapping, RenameTable
from repro.isa import NO_REG, NUM_ARCH_REGS


def test_initial_state_is_static():
    t = RenameTable()
    for arch in range(NUM_ARCH_REGS):
        m = t.lookup(arch)
        assert m.is_static
        assert t.present_in(arch, 0) and t.present_in(arch, 1)
        assert t.phys_in(arch, 0) == READY_EVERYWHERE


def test_define_and_lookup():
    t = RenameTable()
    prev = t.define(3, cluster=1, phys=7)
    assert prev.is_static
    m = t.lookup(3)
    assert m.cluster == 1 and m.phys == 7 and m.replica == NO_REG
    assert t.present_in(3, 1)
    assert not t.present_in(3, 0)
    assert t.phys_in(3, 1) == 7
    assert t.phys_in(3, 0) == NO_REG


def test_replica_lifecycle():
    t = RenameTable()
    t.define(3, cluster=0, phys=5)
    t.set_replica(3, 9)
    assert t.present_in(3, 1)
    assert t.phys_in(3, 1) == 9
    assert t.phys_in(3, 0) == 5


def test_replica_requires_dynamic_mapping():
    t = RenameTable()
    with pytest.raises(RuntimeError, match="static"):
        t.set_replica(2, 4)


def test_double_replica_rejected():
    t = RenameTable()
    t.define(3, 0, 5)
    t.set_replica(3, 9)
    with pytest.raises(RuntimeError, match="replica"):
        t.set_replica(3, 10)


def test_redefine_clears_replica():
    t = RenameTable()
    t.define(3, 0, 5)
    t.set_replica(3, 9)
    prev = t.define(3, 1, 6)
    assert prev == Mapping(0, 5, 9)  # old replica captured for freeing
    assert t.lookup(3).replica == NO_REG


def test_undo_define_restores_exactly():
    t = RenameTable()
    t.define(3, 0, 5)
    t.set_replica(3, 9)
    prev = t.define(3, 1, 6)
    t.undo_define(3, prev)
    assert t.lookup(3) == Mapping(0, 5, 9)


def test_clear_replica_only_if_matching():
    t = RenameTable()
    t.define(3, 0, 5)
    t.set_replica(3, 9)
    t.clear_replica(3, 4)  # wrong phys: no-op
    assert t.lookup(3).replica == 9
    t.clear_replica(3, 9)
    assert t.lookup(3).replica == NO_REG


def test_live_mappings():
    t = RenameTable()
    assert t.live_mappings() == []
    t.define(2, 0, 1)
    t.define(8, 1, 3)
    live = dict(t.live_mappings())
    assert set(live) == {2, 8}
