"""Trace cache + MITE timing tests."""

from repro.config import FrontEndConfig, TLBConfig
from repro.frontend.tracecache import TraceCache


def _tc(uops=960, line=6, fill=5):
    fe = FrontEndConfig(
        trace_cache_uops=uops, trace_cache_line_uops=line, mite_fill_latency=fill
    )
    return TraceCache(fe, TLBConfig(entries=64, assoc=8, miss_latency=30))


def test_miss_then_hit():
    tc = _tc()
    first = tc.lookup(0)
    assert first >= 5  # MITE fill (plus ITLB walk)
    assert tc.lookup(0) == 0
    assert tc.misses == 1 and tc.hits == 1


def test_same_line_shares_entry():
    tc = _tc(line=6)
    tc.lookup(0)
    assert tc.lookup(5) == 0   # same line of 6 uops
    assert tc.lookup(6) >= 5   # next line misses


def test_itlb_latency_included_once_per_page():
    tc = _tc()
    cold = tc.lookup(0)
    assert cold == 5 + 30  # MITE + ITLB walk
    warm_miss = tc.lookup(12)  # same page, different line
    assert warm_miss == 5


def test_hit_rate_on_loop():
    tc = _tc()
    for _ in range(20):
        for pc in range(0, 120, 6):
            tc.lookup(pc)
    assert tc.hit_rate > 0.9


def test_capacity_eviction():
    tc = _tc(uops=96, line=6)  # 16 lines
    for pc in range(0, 6 * 64, 6):
        tc.lookup(pc)
    tc.reset_stats()
    tc.lookup(0)
    assert tc.misses == 1  # line 0 was evicted long ago


def test_reset_stats_keeps_contents():
    tc = _tc()
    tc.lookup(0)
    tc.reset_stats()
    assert tc.lookup(0) == 0
    assert tc.hits == 1 and tc.misses == 0
