"""Indirect-branch predictor and MROM complex-op feature tests."""

import numpy as np
import pytest

from repro.config import baseline_config
from repro.core.processor import Processor
from repro.core.simulator import run_simulation
from repro.frontend.branch import IndirectPredictor
from repro.policies import make_policy
from repro.trace.synthesis import TraceProfile, generate_trace


class TestIndirectPredictor:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            IndirectPredictor(1000)

    def test_cold_entry_mispredicts(self):
        p = IndirectPredictor(256)
        assert p.predict(0, 0x10) == -1
        assert not p.update(0, 0x10, 3)

    def test_repeating_target_learned(self):
        p = IndirectPredictor(256)
        p.update(0, 0x10, 7)
        assert p.update(0, 0x10, 7)
        assert p.accuracy == pytest.approx(0.5)

    def test_dominant_target_pattern(self):
        p = IndirectPredictor(4096, 1)
        hits = sum(
            p.update(0, 0x42, 0 if i % 4 else 9)  # dominant 0, minor 9
            for i in range(400)
        )
        assert hits / 400 > 0.4

    def test_threads_do_not_alias(self):
        p = IndirectPredictor(4096, 2)
        p.update(0, 0x10, 1)
        p.update(1, 0x10, 2)
        assert p.predict(0, 0x10) == 1
        assert p.predict(1, 0x10) == 2

    def test_reset_stats(self):
        p = IndirectPredictor(256)
        p.update(0, 0x10, 1)
        p.reset_stats()
        assert p.lookups == 0 and p.correct == 0


@pytest.fixture(scope="module")
def indirect_profile():
    return TraceProfile(
        name="ind",
        frac_indirect=0.4,
        frac_complex=0.05,
        frac_branch=0.15,
        dep_locality=0.4,
        working_set_lines=300,
        n_blocks=32,
    )


class TestIndirectTraces:
    def test_generation_and_validation(self, indirect_profile):
        t = generate_trace(indirect_profile, seed=3, n_uops=6000)
        t.validate()
        assert t.records["indirect"].sum() > 20
        assert t.records["complex_op"].sum() > 10

    def test_indirect_always_taken(self, indirect_profile):
        t = generate_trace(indirect_profile, seed=3, n_uops=6000)
        ind = t.records["indirect"].astype(bool)
        assert t.records["taken"][ind].all()

    def test_targets_dominated_by_hot_target(self, indirect_profile):
        t = generate_trace(indirect_profile, seed=3, n_uops=12_000)
        rec = t.records
        ind = rec["indirect"].astype(bool)
        # per static branch, the most frequent target takes most executions
        for pc in np.unique(rec["pc"][ind])[:5]:
            targets = rec["target"][ind & (rec["pc"] == pc)]
            if len(targets) >= 20:
                top = np.bincount(targets).max()
                assert top / len(targets) > 0.5

    def test_knob_zero_emits_no_features(self, ilp_profile):
        t = generate_trace(ilp_profile, seed=3, n_uops=4000)
        assert t.records["indirect"].sum() == 0
        assert t.records["complex_op"].sum() == 0
        assert (t.records["target"] == 0).all()

    def test_features_do_not_perturb_base_stream(self, ilp_profile):
        """Enabling features must not change the base program (separate
        rng): old fields of a knob-zero trace equal those of the same
        profile — this is what keeps cached results valid."""
        import dataclasses

        base = generate_trace(ilp_profile, seed=9, n_uops=3000)
        again = generate_trace(
            dataclasses.replace(ilp_profile), seed=9, n_uops=3000
        )
        assert np.array_equal(base.records, again.records)


class TestIndirectPipeline:
    def test_run_with_indirect_branches(self, indirect_profile):
        cfg = baseline_config()
        t1 = generate_trace(indirect_profile, seed=1, n_uops=4000)
        t2 = generate_trace(indirect_profile, seed=2, n_uops=4000)
        res = run_simulation(cfg, "cssp", [t1, t2], stop="all_done")
        assert res.committed == 8000
        assert res.stats["extra"]["indirect_lookups"] > 50
        assert 0.2 < res.stats["extra"]["indirect_accuracy"] < 0.95

    def test_indirect_mispredicts_trigger_wrong_path(self, indirect_profile):
        cfg = baseline_config()
        t1 = generate_trace(indirect_profile, seed=1, n_uops=4000)
        t2 = generate_trace(indirect_profile, seed=2, n_uops=4000)
        proc = Processor(cfg, make_policy("icount"), [t1, t2])
        while not proc.all_done() and proc.cycle < 200_000:
            proc.step()
        assert proc.all_done()
        assert proc.stats.mispredicts > 0
        assert proc.stats.wrong_path_fetched > 0

    def test_complex_ops_slow_fetch(self):
        cfg = baseline_config()
        plain = TraceProfile(name="plain", frac_branch=0.05, dep_locality=0.2)
        heavy = TraceProfile(
            name="heavy", frac_branch=0.05, dep_locality=0.2, frac_complex=0.2
        )
        t_plain = [generate_trace(plain, seed=s, n_uops=4000) for s in (1, 2)]
        t_heavy = [generate_trace(heavy, seed=s, n_uops=4000) for s in (1, 2)]
        fast = run_simulation(cfg, "icount", t_plain, stop="all_done")
        slow = run_simulation(cfg, "icount", t_heavy, stop="all_done")
        assert slow.cycles > fast.cycles * 1.1  # MROM serialization costs

    def test_knob_zero_never_consults_ipredictor(self, config, ilp_trace, fp_trace):
        res = run_simulation(config, "icount", [ilp_trace, fp_trace])
        assert res.stats["extra"]["indirect_lookups"] == 0
