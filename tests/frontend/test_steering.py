"""Steering ([12]-style dependence + balance) tests."""

import pytest

from repro.backend.cluster import Cluster
from repro.config import baseline_config
from repro.frontend.rename import RenameTable
from repro.frontend.steering import LoadBalanceSteering, RoundRobinSteering, Steering
from repro.isa import Uop, UopClass


@pytest.fixture()
def clusters():
    cfg = baseline_config()
    return [Cluster(i, cfg) for i in range(2)]


def _fill_iq(cluster, n, tid=0):
    for i in range(n):
        u = Uop(tid, UopClass.INT_ALU)
        u.age = 1000 + cluster.index * 100 + i
        u.wait_count = 1  # keep it parked
        cluster.iq.dispatch(u)


def test_prefers_cluster_with_sources(clusters):
    table = RenameTable()
    table.define(1, cluster=1, phys=0)
    u = Uop(0, UopClass.INT_ALU, dest=2, src1=1)
    s = Steering(imbalance_threshold=4)
    assert s.preferred_cluster(u, table, clusters) == 1


def test_majority_of_sources_wins(clusters):
    table = RenameTable()
    table.define(1, cluster=0, phys=0)
    table.define(2, cluster=0, phys=1)
    u = Uop(0, UopClass.INT_ALU, dest=3, src1=1, src2=2)
    assert Steering().preferred_cluster(u, table, clusters) == 0


def test_tie_goes_to_less_loaded(clusters):
    table = RenameTable()  # all sources static -> counted in both clusters
    _fill_iq(clusters[0], 5)
    u = Uop(0, UopClass.INT_ALU, dest=3, src1=1, src2=2)
    assert Steering().preferred_cluster(u, table, clusters) == 1


def test_replica_counts_for_both(clusters):
    table = RenameTable()
    table.define(1, cluster=0, phys=0)
    table.set_replica(1, 3)
    _fill_iq(clusters[0], 3)
    u = Uop(0, UopClass.INT_ALU, dest=2, src1=1)
    # value available in both clusters -> tie -> lighter cluster
    assert Steering().preferred_cluster(u, table, clusters) == 1


def test_balance_override(clusters):
    table = RenameTable()
    table.define(1, cluster=0, phys=0)
    _fill_iq(clusters[0], 10)
    u = Uop(0, UopClass.INT_ALU, dest=2, src1=1)
    # dependence prefers 0, but 0 is 10 entries heavier than 1
    assert Steering(imbalance_threshold=4).preferred_cluster(u, table, clusters) == 1
    # a lax threshold keeps the dependence choice
    assert Steering(imbalance_threshold=20).preferred_cluster(u, table, clusters) == 0


def test_round_robin_alternates(clusters):
    s = RoundRobinSteering()
    table = RenameTable()
    u = Uop(0, UopClass.INT_ALU)
    picks = [s.preferred_cluster(u, table, clusters) for _ in range(4)]
    assert picks == [0, 1, 0, 1]


def test_load_balance_always_lighter(clusters):
    s = LoadBalanceSteering()
    table = RenameTable()
    table.define(1, cluster=0, phys=0)
    _fill_iq(clusters[0], 1)
    u = Uop(0, UopClass.INT_ALU, src1=1)
    assert s.preferred_cluster(u, table, clusters) == 1  # ignores dependences
