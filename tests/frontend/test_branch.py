"""Gshare predictor tests."""

import pytest

from repro.frontend.branch import GShare


def test_power_of_two_required():
    with pytest.raises(ValueError):
        GShare(1000, 2)


def test_learns_always_taken():
    g = GShare(256, 1)
    for _ in range(8):
        g.update(0, pc=0x40, taken=True)
    assert g.predict(0, 0x40)


def test_learns_never_taken():
    g = GShare(256, 1)
    for _ in range(8):
        g.update(0, pc=0x40, taken=False)
    assert not g.predict(0, 0x40)


def test_update_returns_pretraining_prediction():
    g = GShare(256, 1)
    first = g.update(0, 0x10, taken=False)
    assert first  # initialized weakly-taken
    # after enough not-taken training the returned prediction flips
    for _ in range(4):
        g.update(0, 0x10, taken=False)
    # history changed, so index differs; check accuracy improved overall
    assert g.lookups == 5


def test_accuracy_tracking():
    g = GShare(1024, 1)
    for _ in range(100):
        g.update(0, 0x5, taken=True)
    assert g.accuracy > 0.9


def test_alternating_pattern_learned_via_history():
    g = GShare(4096, 1, hist_bits=8)
    correct_late = 0
    for i in range(400):
        pred = g.update(0, 0x7, taken=(i % 2 == 0))
        if i >= 200 and pred == (i % 2 == 0):
            correct_late += 1
    assert correct_late > 180  # history disambiguates the alternation


def test_per_thread_history_isolated():
    g = GShare(256, 2)
    g.update(0, 0x1, True)
    g.update(0, 0x1, True)
    h0 = g._history[0]
    assert g._history[1] == 0  # thread 1 untouched
    g.reset_thread(0)
    assert g._history[0] == 0 and h0 != 0


def test_biased_branches_highly_predictable():
    import random

    rng = random.Random(7)
    g = GShare(32 * 1024, 1)
    correct = 0
    n = 2000
    for i in range(n):
        pc = 0x100 + (i % 16)
        taken = rng.random() < 0.95
        if g.update(0, pc, taken) == taken:
            correct += 1
    assert correct / n > 0.85


def test_reset_stats_keeps_training():
    g = GShare(256, 1)
    for _ in range(8):
        g.update(0, 0x40, taken=True)
    g.reset_stats()
    assert g.lookups == 0
    assert g.predict(0, 0x40)  # tables still trained
