"""Architectural register namespace tests."""

import pytest

from repro.isa import (
    NUM_ARCH_FP,
    NUM_ARCH_INT,
    NUM_ARCH_REGS,
    RegClass,
    reg_class,
    reg_name,
)


def test_namespace_sizes():
    assert NUM_ARCH_REGS == NUM_ARCH_INT + NUM_ARCH_FP
    assert NUM_ARCH_INT == 16
    assert NUM_ARCH_FP == 16


def test_int_regs_classify_int():
    for r in range(NUM_ARCH_INT):
        assert reg_class(r) == RegClass.INT


def test_fp_regs_classify_fp():
    for r in range(NUM_ARCH_INT, NUM_ARCH_REGS):
        assert reg_class(r) == RegClass.FP


@pytest.mark.parametrize("bad", [-1, NUM_ARCH_REGS, NUM_ARCH_REGS + 5])
def test_reg_class_rejects_out_of_range(bad):
    with pytest.raises(ValueError):
        reg_class(bad)


def test_reg_names():
    assert reg_name(0) == "r0"
    assert reg_name(NUM_ARCH_INT - 1) == f"r{NUM_ARCH_INT - 1}"
    assert reg_name(NUM_ARCH_INT) == "x0"
    assert reg_name(NUM_ARCH_REGS - 1) == f"x{NUM_ARCH_FP - 1}"


@pytest.mark.parametrize("bad", [-1, NUM_ARCH_REGS])
def test_reg_name_rejects_out_of_range(bad):
    with pytest.raises(ValueError):
        reg_name(bad)


def test_regclass_values_index_files():
    # RegClass values are used as list indices throughout the backend
    assert int(RegClass.INT) == 0
    assert int(RegClass.FP) == 1
