"""Micro-op model tests."""

import pytest

from repro.isa import NO_REG, Uop, UopClass, is_mem_class, port_class
from repro.isa.uops import PORT_FP, PORT_INT, PORT_MEM


def test_port_class_mapping():
    assert port_class(UopClass.INT_ALU) == PORT_INT
    assert port_class(UopClass.INT_MUL) == PORT_INT
    assert port_class(UopClass.BRANCH) == PORT_INT
    assert port_class(UopClass.COPY) == PORT_INT
    assert port_class(UopClass.FP) == PORT_FP
    assert port_class(UopClass.SIMD) == PORT_FP
    assert port_class(UopClass.LOAD) == PORT_MEM
    assert port_class(UopClass.STORE) == PORT_MEM


def test_is_mem_class():
    assert is_mem_class(UopClass.LOAD)
    assert is_mem_class(UopClass.STORE)
    assert not is_mem_class(UopClass.INT_ALU)
    assert not is_mem_class(UopClass.BRANCH)


def test_uop_defaults():
    u = Uop(0, UopClass.INT_ALU, dest=3, src1=1, src2=2)
    assert u.wait_count == 0
    assert not u.issued and not u.completed and not u.squashed
    assert u.phys_dest == NO_REG
    assert u.age == -1
    assert u.waits is None


def test_sources_skips_no_reg():
    assert Uop(0, UopClass.INT_ALU).sources() == ()
    assert Uop(0, UopClass.INT_ALU, src1=4).sources() == (4,)
    assert Uop(0, UopClass.INT_ALU, src1=4, src2=9).sources() == (4, 9)


def test_duplicate_sources_reported_twice():
    # rename dedups them; the uop itself reports raw operands
    u = Uop(0, UopClass.INT_ALU, src1=4, src2=4)
    assert u.sources() == (4, 4)


def test_class_predicates():
    assert Uop(0, UopClass.BRANCH).is_branch
    assert Uop(0, UopClass.LOAD).is_load and Uop(0, UopClass.LOAD).is_mem
    assert Uop(0, UopClass.STORE).is_store and Uop(0, UopClass.STORE).is_mem
    assert Uop(0, UopClass.COPY).is_copy
    assert not Uop(0, UopClass.FP).is_mem


def test_uop_classes_are_ints():
    # hot paths rely on plain-int comparisons
    u = Uop(0, int(UopClass.LOAD))
    assert u.opclass == UopClass.LOAD


def test_uop_has_slots():
    u = Uop(0, UopClass.INT_ALU)
    with pytest.raises(AttributeError):
        u.not_a_field = 1  # type: ignore[attr-defined]
