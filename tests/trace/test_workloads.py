"""Workload pool (Table 2 structure) tests."""

import pytest

from repro.trace.categories import WorkloadType
from repro.trace.workloads import build_pool

# a tiny pool shared by the tests in this module
@pytest.fixture(scope="module")
def pool():
    return build_pool(n_uops=500, n_ilp=1, n_mem=1, n_mix=1, n_mixes_category=3)


def test_pool_structure(pool):
    cats = pool.categories()
    assert len(cats) == 11
    for cat in cats:
        ws = pool.by_category(cat)
        if cat == "mixes":
            assert len(ws) == 3
        else:
            assert len(ws) == 3  # 1 ILP + 1 MEM + 1 MIX


def test_table2_default_counts():
    pool = build_pool(n_uops=200, n_mixes_category=4)
    # paper counts: 3/3/2 per category plus the mixes category
    for cat in pool.categories():
        if cat == "mixes":
            continue
        ws = pool.by_category(cat)
        assert sum(1 for w in ws if w.wtype == WorkloadType.ILP) == 3
        assert sum(1 for w in ws if w.wtype == WorkloadType.MEM) == 3
        assert sum(1 for w in ws if w.wtype == WorkloadType.MIX) == 2


def test_workloads_are_two_threaded(pool):
    for w in pool:
        assert w.num_threads == 2
        for t in w.traces:
            assert len(t) == 500


def test_mix_pairs_one_of_each(pool):
    for w in pool:
        kinds = sorted(t.kind for t in w.traces)
        if w.wtype == WorkloadType.ILP:
            assert kinds == ["ilp", "ilp"]
        elif w.wtype == WorkloadType.MEM:
            assert kinds == ["mem", "mem"]


def test_ispec_fspec_pairs_the_two_spec_suites(pool):
    for w in pool.by_category("ISPEC-FSPEC"):
        cats = {t.category for t in w.traces}
        assert cats == {"ISPEC00", "FSPEC00"}


def test_mixes_pair_distinct_categories(pool):
    for w in pool.by_category("mixes"):
        a, b = w.traces
        assert a.category != b.category


def test_names_follow_paper_convention(pool):
    for w in pool.by_category("ISPEC-FSPEC"):
        assert w.name.split(".")[1] == "2"  # <type>.2.<index>


def test_pool_deterministic():
    a = build_pool(n_uops=300, n_ilp=1, n_mem=0, n_mix=0, n_mixes_category=2)
    b = build_pool(n_uops=300, n_ilp=1, n_mem=0, n_mix=0, n_mixes_category=2)
    import numpy as np

    for wa, wb in zip(a, b):
        assert wa.name == wb.name
        for ta, tb in zip(wa.traces, wb.traces):
            assert np.array_equal(ta.records, tb.records)


def test_get_and_summary(pool):
    w = pool.by_category("DH")[0]
    assert pool.get("DH", w.name) is w
    with pytest.raises(KeyError):
        pool.get("DH", "nope")
    text = pool.summary()
    assert "DH" in text and "total workloads" in text


def test_workload_traces_differ_between_threads(pool):
    import numpy as np

    for w in pool:
        a, b = w.traces
        if a.category == b.category and a.kind == b.kind:
            assert not np.array_equal(a.records, b.records)
