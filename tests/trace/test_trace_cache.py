"""The shared on-disk trace-synthesis cache.

Synthesis is deterministic, so a cached entry must be bit-identical to a
fresh emission; the cache must also survive hostile disk states (truncated
or garbage entries) by regenerating, and stay fully disabled when the
environment says so.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.parallel import TraceSpec
from repro.trace import cache
from repro.trace.categories import category_profile
from repro.trace.synthesis import TraceProfile, generate_trace

PROFILE = TraceProfile(name="cache-test", n_blocks=16, working_set_lines=64)


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """A private, empty cache directory for one test."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    cache.reset_stats()
    yield tmp_path / "traces"
    cache.reset_stats()


def test_cold_miss_then_hit(cache_env):
    first = generate_trace(PROFILE, seed=7, n_uops=500)
    assert cache.stats["misses"] == 1
    assert cache.stats["stores"] == 1
    assert cache.stats["hits"] == 0
    assert len(list(cache_env.glob("*.npy"))) == 1

    second = generate_trace(PROFILE, seed=7, n_uops=500)
    assert cache.stats["hits"] == 1
    assert np.array_equal(first.records, second.records)


def test_key_distinguishes_inputs(cache_env):
    k = cache.trace_key(PROFILE, seed=7, n_uops=500)
    assert k != cache.trace_key(PROFILE, seed=8, n_uops=500)
    assert k != cache.trace_key(PROFILE, seed=7, n_uops=501)
    other = TraceProfile(name="cache-test", n_blocks=16, working_set_lines=65)
    assert k != cache.trace_key(other, seed=7, n_uops=500)
    # a second call with identical inputs is stable
    assert k == cache.trace_key(PROFILE, seed=7, n_uops=500)


def test_corrupt_entry_recovers(cache_env):
    reference = generate_trace(PROFILE, seed=7, n_uops=500)
    entry = next(cache_env.glob("*.npy"))
    entry.write_bytes(b"this is not a numpy archive")

    cache.reset_stats()
    regenerated = generate_trace(PROFILE, seed=7, n_uops=500)
    assert cache.stats["hits"] == 0
    assert cache.stats["misses"] == 1
    assert cache.stats["stores"] == 1  # re-stored after regeneration
    assert np.array_equal(regenerated.records, reference.records)
    # and the re-stored entry is valid again
    cache.reset_stats()
    generate_trace(PROFILE, seed=7, n_uops=500)
    assert cache.stats["hits"] == 1


def test_truncated_entry_recovers(cache_env):
    reference = generate_trace(PROFILE, seed=7, n_uops=500)
    entry = next(cache_env.glob("*.npy"))
    blob = entry.read_bytes()
    entry.write_bytes(blob[: len(blob) // 2])

    cache.reset_stats()
    regenerated = generate_trace(PROFILE, seed=7, n_uops=500)
    assert cache.stats["misses"] == 1
    assert np.array_equal(regenerated.records, reference.records)


def test_wrong_length_entry_is_dropped(cache_env):
    generate_trace(PROFILE, seed=7, n_uops=500)
    key = cache.trace_key(PROFILE, seed=7, n_uops=500)
    # same key claimed, wrong payload length: must not be served
    assert cache.load_records(key, n_uops=400) is None
    assert not list(cache_env.glob("*.npy"))  # dropped, not kept


def test_disabled_by_env(tmp_path, monkeypatch):
    for off in ("0", "off", ""):
        monkeypatch.setenv("REPRO_TRACE_CACHE", off)
        assert cache.cache_dir() is None
        cache.reset_stats()
        tr = generate_trace(PROFILE, seed=3, n_uops=300)
        assert len(tr) == 300
        assert cache.stats == {"hits": 0, "misses": 0, "stores": 0}


def test_use_cache_false_bypasses(cache_env):
    generate_trace(PROFILE, seed=7, n_uops=500, use_cache=False)
    assert cache.stats == {"hits": 0, "misses": 0, "stores": 0}
    assert not list(cache_env.glob("*.npy"))


def test_clear(cache_env):
    generate_trace(PROFILE, seed=7, n_uops=500)
    generate_trace(PROFILE, seed=8, n_uops=500)
    assert cache.clear() == 2
    assert not list(cache_env.glob("*.npy"))


def test_hit_is_memory_mapped(cache_env):
    """Cache hits come back as read-only memory maps: sweep workers loading
    the same trace share one copy in the OS page cache."""
    generate_trace(PROFILE, seed=7, n_uops=500)
    key = cache.trace_key(PROFILE, seed=7, n_uops=500)
    records = cache.load_records(key, n_uops=500)
    assert records is not None
    assert isinstance(records, np.memmap)
    with pytest.raises((ValueError, OSError)):
        records["pc"][0] = 1  # read-only mapping


def test_clear_removes_legacy_npz(cache_env):
    generate_trace(PROFILE, seed=7, n_uops=500)
    cache_env.joinpath("deadbeef.npz").write_bytes(b"legacy v1 entry")
    assert cache.clear() == 2
    assert not list(cache_env.iterdir())


def test_trace_spec_build_loads_from_cache(cache_env):
    """The sweep workers' ``TraceSpec.build`` path is served by the cache:
    the first build synthesizes and stores, the second loads from disk."""
    profile = category_profile("server", "mem")
    original = generate_trace(
        profile, seed=13, n_uops=800, name="server-13", category="server", kind="mem"
    )
    assert cache.stats["stores"] == 1

    cache.reset_stats()
    rebuilt = TraceSpec.of(original).build()
    assert cache.stats["hits"] == 1
    assert cache.stats["misses"] == 0
    assert np.array_equal(rebuilt.records, original.records)
    assert rebuilt.name == original.name
