"""Synthetic trace generator tests."""

import numpy as np
import pytest

from repro.isa import NO_REG, NUM_ARCH_INT, UopClass
from repro.trace.synthesis import (
    SyntheticProgram,
    TraceProfile,
    WrongPathSource,
    generate_trace,
)


def test_determinism(ilp_profile):
    a = generate_trace(ilp_profile, seed=42, n_uops=2000)
    b = generate_trace(ilp_profile, seed=42, n_uops=2000)
    assert np.array_equal(a.records, b.records)


def test_different_seeds_differ(ilp_profile):
    a = generate_trace(ilp_profile, seed=1, n_uops=2000)
    b = generate_trace(ilp_profile, seed=2, n_uops=2000)
    assert not np.array_equal(a.records, b.records)


def test_generated_traces_validate(ilp_profile, mem_profile, fp_profile):
    for prof, seed in [(ilp_profile, 1), (mem_profile, 2), (fp_profile, 3)]:
        generate_trace(prof, seed=seed, n_uops=3000).validate()


def test_mix_close_to_profile(ilp_profile):
    # The dynamic walk concentrates on hot loops, so the dynamic mix can
    # drift from the template sampling probabilities; it must stay in a
    # believable band around the profile.
    t = generate_trace(ilp_profile, seed=7, n_uops=20_000)
    s = t.stats()
    assert s.frac_load == pytest.approx(ilp_profile.frac_load, abs=0.15)
    assert s.frac_store == pytest.approx(ilp_profile.frac_store, abs=0.08)
    assert s.frac_branch == pytest.approx(ilp_profile.frac_branch, abs=0.08)
    assert s.frac_load > 0.05 and s.frac_branch > 0.02


def test_fp_mix(fp_profile):
    t = generate_trace(fp_profile, seed=7, n_uops=20_000)
    s = t.stats()
    # frac_fp applies to compute uops only, so the stream share is lower
    assert 0.2 < s.frac_fp < fp_profile.frac_fp


def test_working_set_bounded(ilp_profile):
    t = generate_trace(ilp_profile, seed=7, n_uops=20_000)
    mem = t.records["mem_line"][
        (t.records["opclass"] == int(UopClass.LOAD))
        | (t.records["opclass"] == int(UopClass.STORE))
    ]
    assert mem.max() < ilp_profile.working_set_lines


def test_branch_bias_reflected():
    prof = TraceProfile(name="b", branch_bias=0.95, frac_branch=0.2)
    t = generate_trace(prof, seed=5, n_uops=20_000)
    assert t.stats().frac_taken > 0.7


def test_pcs_repeat_loopy_program(ilp_profile):
    t = generate_trace(ilp_profile, seed=9, n_uops=10_000)
    distinct = len(np.unique(t.records["pc"]))
    assert distinct < len(t) / 4  # loops revisit static code


def test_int_only_profile_has_no_fp_regs():
    prof = TraceProfile(name="int", frac_fp=0.0, int_regs_used=12)
    t = generate_trace(prof, seed=3, n_uops=5000)
    for field in ("dest", "src1", "src2"):
        vals = t.records[field]
        assert (vals[vals != NO_REG] < NUM_ARCH_INT).all()


def test_invariant_registers_never_written():
    prof = TraceProfile(name="inv", int_regs_used=10, fp_regs_used=10)
    t = generate_trace(prof, seed=3, n_uops=8000)
    dests = t.records["dest"]
    dests = dests[dests != NO_REG]
    int_dests = dests[dests < NUM_ARCH_INT]
    assert int_dests.max() < prof.int_regs_used


def test_profile_validation_rejects_bad_fractions():
    with pytest.raises(ValueError):
        TraceProfile(frac_load=1.5).validate()
    with pytest.raises(ValueError):
        TraceProfile(frac_load=0.5, frac_store=0.3, frac_branch=0.2).validate()
    with pytest.raises(ValueError):
        TraceProfile(int_regs_used=0).validate()
    with pytest.raises(ValueError):
        TraceProfile(n_blocks=1).validate()
    with pytest.raises(ValueError):
        TraceProfile(dep_mean_distance=0.5).validate()
    with pytest.raises(ValueError):
        TraceProfile(stride_reuse=0).validate()


def test_program_reusable(ilp_profile):
    prog = SyntheticProgram(ilp_profile, seed=4)
    a = prog.emit(1000)
    b = prog.emit(1000, seed=99)
    assert len(a) == len(b) == 1000
    assert not np.array_equal(a, b)  # different walk seeds


def test_scaled_memory():
    prof = TraceProfile(working_set_lines=100)
    big = prof.scaled_memory(10.0)
    assert big.working_set_lines == 1000
    assert prof.working_set_lines == 100  # frozen original untouched


class TestWrongPathSource:
    def test_rejects_empty(self):
        import repro.trace.trace as tt

        empty = tt.Trace(np.zeros(0, dtype=tt.TRACE_DTYPE))
        with pytest.raises(ValueError):
            WrongPathSource(empty)

    def test_distinct_pc_space(self, ilp_trace):
        src = WrongPathSource(ilp_trace)
        for _ in range(50):
            rec = src.next_record()
            assert rec[4] & (1 << 40)  # wrong-path PC bit

    def test_peek_matches_next(self, ilp_trace):
        src = WrongPathSource(ilp_trace)
        for _ in range(20):
            pc = src.peek_pc()
            assert src.next_record()[4] == pc

    def test_mix_resembles_trace(self, ilp_trace):
        src = WrongPathSource(ilp_trace)
        classes = [src.next_record()[0] for _ in range(2000)]
        frac_load = classes.count(int(UopClass.LOAD)) / len(classes)
        assert frac_load == pytest.approx(ilp_trace.stats().frac_load, abs=0.08)


def test_iter_uop_mix(ilp_trace):
    from repro.trace.synthesis import iter_uop_mix

    mix = dict(iter_uop_mix(ilp_trace.records))
    assert sum(mix.values()) == pytest.approx(1.0)
    assert all(0.0 < frac <= 1.0 for frac in mix.values())
    assert UopClass.LOAD in mix and UopClass.BRANCH in mix


def test_iter_uop_mix_empty():
    import numpy as np

    from repro.trace.synthesis import iter_uop_mix
    from repro.trace.trace import TRACE_DTYPE

    assert list(iter_uop_mix(np.zeros(0, dtype=TRACE_DTYPE))) == []
