"""Category profile (Table 2) tests."""

import pytest

from repro.trace.categories import (
    CATEGORIES,
    CATEGORY_PROFILES,
    WorkloadType,
    category_profile,
)


def test_all_eleven_categories_present():
    assert len(CATEGORIES) == 11
    assert "ISPEC-FSPEC" in CATEGORIES and "mixes" in CATEGORIES


def test_pairing_categories_have_no_single_profile():
    for cat in ("ISPEC-FSPEC", "mixes"):
        assert cat not in CATEGORY_PROFILES
        with pytest.raises(KeyError):
            category_profile(cat, "ilp")


def test_profiles_validate():
    for ilp, mem in CATEGORY_PROFILES.values():
        ilp.validate()
        mem.validate()


def test_ilp_variants_are_cache_resident():
    # L2 is 64K lines; ILP working sets must fit comfortably
    for name in CATEGORY_PROFILES:
        prof = category_profile(name, "ilp")
        assert prof.working_set_lines <= 1024, name


def test_mem_variants_exceed_l2():
    l2_lines = (4 * 1024 * 1024) // 64
    for name in CATEGORY_PROFILES:
        prof = category_profile(name, "mem")
        assert prof.working_set_lines >= l2_lines, name


def test_ilp_more_parallel_than_mem():
    for name in CATEGORY_PROFILES:
        ilp = category_profile(name, "ilp")
        mem = category_profile(name, "mem")
        assert ilp.dep_locality <= mem.dep_locality, name
        assert ilp.dep_mean_distance >= mem.dep_mean_distance, name
        assert ilp.load_dep_chain <= mem.load_dep_chain, name


def test_ispec_is_integer_only():
    prof = category_profile("ISPEC00", "ilp")
    assert prof.frac_fp == 0.0
    assert prof.int_regs_used > prof.fp_regs_used


def test_fspec_is_fp_dominant():
    prof = category_profile("FSPEC00", "ilp")
    assert prof.frac_fp >= 0.5
    assert prof.fp_regs_used > prof.int_regs_used


def test_bad_kind_rejected():
    with pytest.raises(ValueError):
        category_profile("DH", "mix")


def test_workload_type_values():
    assert {t.value for t in WorkloadType} == {"ilp", "mem", "mix"}
