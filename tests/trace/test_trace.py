"""Trace container and persistence tests."""

import numpy as np
import pytest

from repro.isa import NO_REG, UopClass
from repro.trace.trace import TRACE_DTYPE, Trace


def _records(n=4):
    rec = np.zeros(n, dtype=TRACE_DTYPE)
    rec["opclass"] = int(UopClass.INT_ALU)
    rec["dest"] = 1
    rec["src1"] = 0
    rec["src2"] = NO_REG
    rec["pc"] = np.arange(n)
    return rec


def test_requires_trace_dtype():
    with pytest.raises(TypeError):
        Trace(np.zeros(4, dtype=np.int64))


def test_len_and_metadata():
    t = Trace(_records(7), name="t", category="cat", kind="ilp", seed=3)
    assert len(t) == 7
    assert t.category == "cat" and t.kind == "ilp" and t.seed == 3


def test_validate_accepts_wellformed():
    Trace(_records()).validate()


def test_validate_rejects_copy_uops():
    rec = _records()
    rec["opclass"][0] = int(UopClass.COPY)
    rec["dest"][0] = NO_REG
    with pytest.raises(ValueError, match="COPY"):
        Trace(rec).validate()


def test_validate_rejects_store_with_dest():
    rec = _records()
    rec["opclass"][0] = int(UopClass.STORE)
    rec["dest"][0] = 2
    with pytest.raises(ValueError, match="store"):
        Trace(rec).validate()


def test_validate_rejects_branch_with_dest():
    rec = _records()
    rec["opclass"][0] = int(UopClass.BRANCH)
    with pytest.raises(ValueError, match="branch"):
        Trace(rec).validate()


def test_validate_rejects_bad_register():
    rec = _records()
    rec["src1"][0] = 99
    with pytest.raises(ValueError, match="src1"):
        Trace(rec).validate()


def test_validate_rejects_negative_mem_line():
    rec = _records()
    rec["opclass"][0] = int(UopClass.LOAD)
    rec["mem_line"][0] = -5
    with pytest.raises(ValueError, match="negative"):
        Trace(rec).validate()


def test_stats_mix(ilp_trace):
    s = ilp_trace.stats()
    assert s.n_uops == len(ilp_trace)
    assert 0.0 < s.frac_load < 0.5
    assert 0.0 < s.frac_branch < 0.3
    assert 0.0 <= s.frac_taken <= 1.0
    assert s.n_static_branches > 0
    assert s.working_set_lines > 0


def test_stats_empty_trace():
    s = Trace(np.zeros(0, dtype=TRACE_DTYPE)).stats()
    assert s.n_uops == 0
    assert s.frac_load == 0.0


def test_save_load_roundtrip(tmp_path, ilp_trace):
    path = tmp_path / "t.npz"
    ilp_trace.save(path)
    back = Trace.load(path)
    assert np.array_equal(back.records, ilp_trace.records)
    assert back.name == ilp_trace.name
    assert back.category == ilp_trace.category
    assert back.kind == ilp_trace.kind
    assert back.seed == ilp_trace.seed
