"""Measurement-control tests: reset, prewarm, flush primitives."""

from repro.core.processor import Processor
from repro.policies import make_policy


def _step_n(proc, n):
    for _ in range(n):
        if proc.all_done():
            break
        proc.step()


class TestResetMeasurement:
    def test_counters_zeroed_state_kept(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        _step_n(proc, 600)
        committed_before = proc.threads[0].committed + proc.threads[1].committed
        assert proc.stats.committed > 0
        proc.reset_measurement()
        assert proc.stats.committed == 0
        assert proc.stats.cycles == 0
        assert proc.mem.l1.accesses == 0
        assert proc.tc.hits == 0 and proc.tc.misses == 0
        # architectural progress preserved
        total = proc.threads[0].committed + proc.threads[1].committed
        assert total == committed_before
        # pipeline continues normally
        _step_n(proc, 200)
        assert proc.stats.committed > 0

    def test_cycle_counter_monotonic_across_reset(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        _step_n(proc, 100)
        cycle = proc.cycle
        proc.reset_measurement()
        proc.step()
        assert proc.cycle == cycle + 1  # absolute time keeps running


class TestPrewarm:
    def test_only_ilp_traces_prewarmed(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        proc.prewarm_caches()
        resident = proc.mem.l2.occupancy()
        # thread 0's (ilp) lines resident; far fewer than the mem trace's
        # footprint would add
        assert 0 < resident <= ilp_trace.stats().working_set_lines

    def test_prewarm_resets_warmup_stats(self, config, ilp_trace, ilp_trace_b):
        proc = Processor(config, make_policy("icount"), [ilp_trace, ilp_trace_b])
        proc.prewarm_caches()
        assert proc.mem.l2.accesses == 0  # prewarm traffic not counted


class TestFlushPrimitive:
    def test_flush_without_pending_miss_is_noop(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        _step_n(proc, 50)
        flushes_before = proc.stats.flushes
        proc.flush_thread(proc.threads[0])  # keep_age=None, no missing load
        assert proc.stats.flushes == flushes_before
        assert not proc.threads[0].flushed

    def test_explicit_keep_age_flushes_younger(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        _step_n(proc, 200)
        t = proc.threads[0]
        if t.inflight:
            keep = t.inflight[0].age
            before = len(t.inflight)
            proc.flush_thread(t, keep_age=keep)
            assert len(t.inflight) <= before
            assert all(u.age <= keep for u in t.inflight)
            assert t.flushed
            # flushed thread neither fetches nor renames
            assert not t.can_fetch(proc.cycle, 24)
            assert not t.can_rename(proc.cycle)

    def test_flushed_thread_resumes_after_unflush(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        _step_n(proc, 200)
        t = proc.threads[0]
        if t.inflight:
            proc.flush_thread(t, keep_age=t.inflight[0].age)
            t.flushed = False  # what on_l2_fill does
            _step_n(proc, 300_000)
            assert proc.all_done()
            assert t.committed == len(ilp_trace)


class TestRenameRetry:
    def test_blocked_thread_yields_rename_slot(self, config, ilp_trace, mem_trace):
        """If the selected thread is structurally blocked (full ROB), the
        other thread gets the rename slot the same cycle."""
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        _step_n(proc, 30)
        t0, t1 = proc.threads
        if t0.fetch_queue and t1.fetch_queue:
            # artificially wedge thread with the lower icount
            target = t0 if t0.icount <= t1.icount else t1
            other = t1 if target is t0 else t0
            renamed_before = proc.stats.renamed
            saved_rob = target.rob
            import repro.backend.rob as rob_mod

            full = rob_mod.ReorderBuffer(1)
            full.push(target.fetch_queue[0])
            target.rob = full
            proc._rename()
            target.rob = saved_rob
            # the slot went to the other thread if it had anything to do
            if other.fetch_queue:
                assert proc.stats.renamed > renamed_before
