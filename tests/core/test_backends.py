"""Backend registry resolution and fail-fast validation."""

from __future__ import annotations

import pytest

from repro.core.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    make_processor,
    processor_class,
    resolve_backend,
)
from repro.core.processor import Processor


def test_default_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend() == DEFAULT_BACKEND
    assert resolve_backend(None) == DEFAULT_BACKEND


def test_explicit_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "vectorized")
    assert resolve_backend("reference") == "reference"


def test_env_resolution(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "reference")
    assert resolve_backend() == "reference"
    monkeypatch.setenv("REPRO_BACKEND", "  Vectorized ")
    assert resolve_backend() == "vectorized"
    monkeypatch.setenv("REPRO_BACKEND", "")
    assert resolve_backend() == DEFAULT_BACKEND
    monkeypatch.setenv("REPRO_BACKEND", "   ")
    assert resolve_backend() == DEFAULT_BACKEND


def test_unknown_name_fails_fast_listing_valid():
    with pytest.raises(ValueError) as exc:
        resolve_backend("vectroized")
    msg = str(exc.value)
    assert "vectroized" in msg
    for name in BACKENDS:
        assert name in msg


def test_unknown_env_value_fails_fast_naming_source(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "numba")
    with pytest.raises(ValueError) as exc:
        resolve_backend()
    msg = str(exc.value)
    assert "REPRO_BACKEND" in msg
    assert "numba" in msg


def test_run_simulation_rejects_unknown_backend(config, ilp_trace, ilp_trace_b):
    from repro.core.simulator import run_simulation

    with pytest.raises(ValueError, match="valid backends"):
        run_simulation(config, "icount", [ilp_trace, ilp_trace_b], backend="nope")


def test_processor_classes():
    from repro.core.vectorized import VectorizedProcessor

    assert processor_class("reference") is Processor
    assert processor_class("vectorized") is VectorizedProcessor
    assert issubclass(VectorizedProcessor, Processor)


def test_make_processor_resolves_env(monkeypatch, config, ilp_trace, ilp_trace_b):
    from repro.policies import make_policy

    monkeypatch.setenv("REPRO_BACKEND", "reference")
    proc = make_processor(None, config, make_policy("icount"),
                          [ilp_trace, ilp_trace_b])
    assert type(proc) is Processor
