"""Cross-backend bit-identity: ``vectorized`` vs the ``reference`` oracle.

The vectorized engine re-implements the cycle loop as one flattened
function over structure-of-arrays state (:mod:`repro.core.vectorized`);
its contract is that *nothing observable changes*: every stats counter,
every telemetry artifact byte, under every policy, with fast-forward on
or off.  These tests are the gate on that contract — the same pattern the
fast-forward identity suite pins for step-vs-jump, applied across the
backend seam.
"""

from __future__ import annotations

import pytest

from repro.core.simulator import run_simulation
from repro.policies import POLICY_NAMES, make_policy
from repro.telemetry import Telemetry, TelemetryConfig
from repro.trace.synthesis import TraceProfile, generate_trace


def _policy(name):
    # quick-scale adaptation interval so CDPRF re-partitions in short runs
    return make_policy(name, interval=1024) if name == "cdprf" else make_policy(name)


def _run(config, policy_name, traces, backend, fast_forward, telemetry=None, **kw):
    kw.setdefault("max_cycles", 60_000)
    kw.setdefault("warmup_uops", 300)
    kw.setdefault("prewarm_caches", True)
    return run_simulation(
        config,
        _policy(policy_name),
        list(traces),
        telemetry=telemetry,
        fast_forward=fast_forward,
        backend=backend,
        **kw,
    )


def _assert_identical(ref, vec):
    assert vec.cycles == ref.cycles
    assert vec.committed == ref.committed
    assert vec.committed_per_thread == ref.committed_per_thread
    assert vec.ipc == ref.ipc
    assert vec.stats == ref.stats


@pytest.mark.parametrize("ff", [False, True], ids=["step", "ff"])
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_bit_identical_stats(config, policy, ff, ilp_trace, mem_trace):
    """Every policy, ff on and off: identical full stats dicts."""
    traces = [ilp_trace, mem_trace]
    ref = _run(config, policy, traces, "reference", ff)
    vec = _run(config, policy, traces, "vectorized", ff)
    _assert_identical(ref, vec)


@pytest.mark.parametrize("ff", [False, True], ids=["step", "ff"])
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_bit_identical_telemetry(config, policy, ff, mem_trace, ilp_trace_b, tmp_path):
    """Every policy, telemetry attached: identical stats AND byte-identical
    telemetry exports (interval samples, event traces)."""
    traces = [mem_trace, ilp_trace_b]
    out = {}
    results = {}
    for backend in ("reference", "vectorized"):
        tel = Telemetry(TelemetryConfig(sample_interval=512))
        results[backend] = _run(config, policy, traces, backend, ff, telemetry=tel)
        out[backend] = tel.export(tmp_path / backend, meta={"run": "backend-identity"})
    _assert_identical(results["reference"], results["vectorized"])
    assert out["vectorized"].keys() == out["reference"].keys()
    for name, path in out["vectorized"].items():
        assert path.read_bytes() == out["reference"][name].read_bytes(), (
            f"{name} telemetry export differs between backends"
        )


@pytest.fixture(scope="module")
def feature_trace():
    """Indirect branches + MROM complex ops: exercises every fetch slow path."""
    profile = TraceProfile(
        name="test-feature",
        frac_load=0.22,
        frac_store=0.08,
        frac_branch=0.12,
        frac_indirect=0.3,
        indirect_targets=5,
        frac_complex=0.05,
        dep_mean_distance=6.0,
        dep_locality=0.4,
        working_set_lines=500,
        stride_frac=0.6,
        branch_bias=0.85,
        int_regs_used=12,
        fp_regs_used=6,
        n_blocks=32,
    )
    return generate_trace(profile, seed=7, n_uops=3000, kind="ilp")


@pytest.mark.parametrize("policy", ["icount", "flush+", "cdprf"])
def test_identical_with_indirect_and_mrom(config, policy, feature_trace, mem_trace):
    """Fetch slow paths (indirect predictor, MROM serialization) and the
    squash-heavy wrong-path machinery stay identical."""
    traces = [feature_trace, mem_trace]
    ref = _run(config, policy, traces, "reference", True)
    vec = _run(config, policy, traces, "vectorized", True)
    _assert_identical(ref, vec)


@pytest.mark.parametrize("stop", ["first_done", "all_done", "cycles"])
def test_identical_across_stop_modes(config, stop, ilp_trace, ilp_trace_b):
    kw = {"stop": stop}
    if stop == "cycles":
        kw["max_cycles"] = 5_000
    ref = _run(config, "stall", [ilp_trace, ilp_trace_b], "reference", True, **kw)
    vec = _run(config, "stall", [ilp_trace, ilp_trace_b], "vectorized", True, **kw)
    _assert_identical(ref, vec)


def test_identical_single_thread(config, mem_trace):
    cfg = config.with_threads(1)
    ref = _run(cfg, "icount", [mem_trace], "reference", True, stop="all_done")
    vec = _run(cfg, "icount", [mem_trace], "vectorized", True, stop="all_done")
    _assert_identical(ref, vec)


def test_identical_no_warmup_no_prewarm(config, ilp_trace, mem_trace):
    """Cold start (no warmup phase, cold caches) — the run_loop seam's
    single-phase path."""
    for kw in ({"warmup_uops": 0, "prewarm_caches": False},):
        ref = _run(config, "cssp", [ilp_trace, mem_trace], "reference", True, **kw)
        vec = _run(config, "cssp", [ilp_trace, mem_trace], "vectorized", True, **kw)
        _assert_identical(ref, vec)


def test_identical_unbounded_machine(unbounded_config, ilp_trace, mem_trace):
    """Figure 2's unbounded-resource machine grows register files on the
    slow path; both backends must grow identically."""
    ref = _run(unbounded_config, "icount", [ilp_trace, mem_trace], "reference", True)
    vec = _run(unbounded_config, "icount", [ilp_trace, mem_trace], "vectorized", True)
    _assert_identical(ref, vec)


def test_vectorized_processor_reports_backend(config, ilp_trace, mem_trace):
    from repro.core.backends import make_processor

    proc = make_processor("vectorized", config, make_policy("icount"),
                          [ilp_trace, mem_trace])
    assert proc.backend_name == "vectorized"
    ref = make_processor("reference", config, make_policy("icount"),
                         [ilp_trace, mem_trace])
    assert ref.backend_name == "reference"
