"""Cross-backend bit-identity: every engine vs the ``reference`` oracle.

The fast engines re-implement the cycle loop — ``vectorized`` as one
flattened function over structure-of-arrays trace columns
(:mod:`repro.core.vectorized`), ``numpy`` as the batched slot-pool engine
(:mod:`repro.core.npengine`), ``compiled`` as the slot-pool engine with a
cffi-compiled wakeup/select kernel (:mod:`repro.core.ckernel`).  Their
shared contract is that *nothing observable changes*: every stats
counter, every telemetry artifact byte, under every policy, with
fast-forward on or off.  These tests are the gate on that contract — the
same pattern the fast-forward identity suite pins for step-vs-jump,
applied across the backend seam.

Every test below parametrizes over the registered non-reference
backends, so registering a new engine in :mod:`repro.core.backends`
automatically subjects it to the whole gate.  Reference runs are
memoized per scenario (they are the slow half of every comparison and
identical across the backends being checked).
"""

from __future__ import annotations

import pytest

from repro.core.backends import BACKENDS, OPTIONAL_BACKENDS, resolve_backend
from repro.core.simulator import run_simulation
from repro.policies import POLICY_NAMES, make_policy
from repro.telemetry import Telemetry, TelemetryConfig
from repro.trace.synthesis import TraceProfile, generate_trace

#: Every registered engine that must match the oracle.
ALT_BACKENDS = [b for b in BACKENDS if b != "reference"]

#: Reference results memoized per scenario tag (traces/config are
#: session-scoped fixtures, so a tag fully determines the run).
_ref_memo: dict[str, object] = {}


def _policy(name):
    # quick-scale adaptation interval so CDPRF re-partitions in short runs
    return make_policy(name, interval=1024) if name == "cdprf" else make_policy(name)


def _run(config, policy_name, traces, backend, fast_forward, telemetry=None, **kw):
    kw.setdefault("max_cycles", 60_000)
    kw.setdefault("warmup_uops", 300)
    kw.setdefault("prewarm_caches", True)
    return run_simulation(
        config,
        _policy(policy_name),
        list(traces),
        telemetry=telemetry,
        fast_forward=fast_forward,
        backend=backend,
        **kw,
    )


def _ref(tag, config, policy_name, traces, fast_forward, **kw):
    got = _ref_memo.get(tag)
    if got is None:
        got = _ref_memo[tag] = _run(
            config, policy_name, traces, "reference", fast_forward, **kw
        )
    return got


def _assert_identical(ref, got):
    assert got.cycles == ref.cycles
    assert got.committed == ref.committed
    assert got.committed_per_thread == ref.committed_per_thread
    assert got.ipc == ref.ipc
    assert got.stats == ref.stats


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("ff", [False, True], ids=["step", "ff"])
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_bit_identical_stats(config, policy, ff, backend, ilp_trace, mem_trace):
    """Every policy, ff on and off, every engine: identical full stats."""
    traces = [ilp_trace, mem_trace]
    ref = _ref(f"stats|{policy}|{ff}", config, policy, traces, ff)
    got = _run(config, policy, traces, backend, ff)
    _assert_identical(ref, got)


@pytest.mark.parametrize("ff", [False, True], ids=["step", "ff"])
@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_bit_identical_telemetry(config, policy, ff, mem_trace, ilp_trace_b, tmp_path):
    """Every policy, telemetry attached: identical stats AND byte-identical
    telemetry exports (interval samples, event traces)."""
    traces = [mem_trace, ilp_trace_b]
    out = {}
    results = {}
    for backend in ("reference", "vectorized"):
        tel = Telemetry(TelemetryConfig(sample_interval=512))
        results[backend] = _run(config, policy, traces, backend, ff, telemetry=tel)
        out[backend] = tel.export(tmp_path / backend, meta={"run": "backend-identity"})
    _assert_identical(results["reference"], results["vectorized"])
    assert out["vectorized"].keys() == out["reference"].keys()
    for name, path in out["vectorized"].items():
        assert path.read_bytes() == out["reference"][name].read_bytes(), (
            f"{name} telemetry export differs between backends"
        )


@pytest.mark.parametrize("backend", [b for b in ALT_BACKENDS if b != "vectorized"])
def test_telemetry_delegation_identical(config, backend, mem_trace, ilp_trace_b,
                                        tmp_path):
    """The slot-pool engines serve telemetry runs through their envelope
    seam (delegating to the flattened engine); the artifacts must still be
    byte-identical to the oracle's."""
    traces = [mem_trace, ilp_trace_b]
    out = {}
    results = {}
    for b in ("reference", backend):
        tel = Telemetry(TelemetryConfig(sample_interval=512))
        results[b] = _run(config, "icount", traces, b, True, telemetry=tel)
        out[b] = tel.export(tmp_path / b, meta={"run": "backend-identity"})
    _assert_identical(results["reference"], results[backend])
    assert out[backend].keys() == out["reference"].keys()
    for name, path in out[backend].items():
        assert path.read_bytes() == out["reference"][name].read_bytes(), (
            f"{name} telemetry export differs between backends"
        )


@pytest.fixture(scope="module")
def feature_trace():
    """Indirect branches + MROM complex ops: exercises every fetch slow path."""
    profile = TraceProfile(
        name="test-feature",
        frac_load=0.22,
        frac_store=0.08,
        frac_branch=0.12,
        frac_indirect=0.3,
        indirect_targets=5,
        frac_complex=0.05,
        dep_mean_distance=6.0,
        dep_locality=0.4,
        working_set_lines=500,
        stride_frac=0.6,
        branch_bias=0.85,
        int_regs_used=12,
        fp_regs_used=6,
        n_blocks=32,
    )
    return generate_trace(profile, seed=7, n_uops=3000, kind="ilp")


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("policy", ["icount", "flush+", "cdprf"])
def test_identical_with_indirect_and_mrom(config, policy, backend, feature_trace,
                                          mem_trace):
    """Fetch slow paths (indirect predictor, MROM serialization) and the
    squash-heavy wrong-path machinery stay identical."""
    traces = [feature_trace, mem_trace]
    ref = _ref(f"feat|{policy}", config, policy, traces, True)
    got = _run(config, policy, traces, backend, True)
    _assert_identical(ref, got)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("stop", ["first_done", "all_done", "cycles"])
def test_identical_across_stop_modes(config, stop, backend, ilp_trace, ilp_trace_b):
    kw = {"stop": stop}
    if stop == "cycles":
        kw["max_cycles"] = 5_000
    traces = [ilp_trace, ilp_trace_b]
    ref = _ref(f"stop|{stop}", config, "stall", traces, True, **kw)
    got = _run(config, "stall", traces, backend, True, **kw)
    _assert_identical(ref, got)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_identical_single_thread(config, backend, mem_trace):
    cfg = config.with_threads(1)
    ref = _ref("st", cfg, "icount", [mem_trace], True, stop="all_done")
    got = _run(cfg, "icount", [mem_trace], backend, True, stop="all_done")
    _assert_identical(ref, got)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_identical_no_warmup_no_prewarm(config, backend, ilp_trace, mem_trace):
    """Cold start (no warmup phase, cold caches) — the run_loop seam's
    single-phase path."""
    kw = {"warmup_uops": 0, "prewarm_caches": False}
    traces = [ilp_trace, mem_trace]
    ref = _ref("cold", config, "cssp", traces, True, **kw)
    got = _run(config, "cssp", traces, backend, True, **kw)
    _assert_identical(ref, got)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_identical_unbounded_machine(unbounded_config, backend, ilp_trace, mem_trace):
    """Figure 2's unbounded-resource machine grows register files on the
    slow path; both backends must grow identically."""
    traces = [ilp_trace, mem_trace]
    ref = _ref("unbounded", unbounded_config, "icount", traces, True)
    got = _run(unbounded_config, "icount", traces, backend, True)
    _assert_identical(ref, got)


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_identical_under_pool_growth(config, backend, monkeypatch, ilp_trace,
                                     mem_trace):
    """A deliberately tiny slot pool forces mid-run grow()/kernel-rebind
    cycles; results must not depend on pool capacity."""
    from repro.core import npengine

    monkeypatch.setattr(npengine.NumpyProcessor, "_pool_capacity", lambda self: 64)
    traces = [ilp_trace, mem_trace]
    ref = _ref("stats|icount|True", config, "icount", traces, True)
    got = _run(config, "icount", traces, backend, True)
    _assert_identical(ref, got)


@pytest.mark.parametrize("backend", ["compiled", "cloop"])
def test_identical_without_compiled_kernel(config, monkeypatch, ilp_trace, mem_trace,
                                           backend):
    """``REPRO_NO_CKERNEL`` forces the kernel-backed backends onto their
    pure fallbacks; behaviour must not change."""
    traces = [ilp_trace, mem_trace]
    ref = _ref("stats|icount|True", config, "icount", traces, True)
    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    got = _run(config, "icount", traces, backend, True)
    _assert_identical(ref, got)


def test_processors_report_backend(config, ilp_trace, mem_trace):
    from repro.core.backends import make_processor

    for backend in BACKENDS:
        proc = make_processor(backend, config, make_policy("icount"),
                              [ilp_trace, mem_trace])
        assert proc.backend_name == backend


def test_unknown_backend_fails_fast():
    """A typo'd name raises immediately and the message names every
    registered backend (not a silent fallback)."""
    with pytest.raises(ValueError) as exc:
        resolve_backend("vectroized")
    msg = str(exc.value)
    assert "vectroized" in msg
    for name in BACKENDS:
        assert name in msg


def test_unknown_backend_from_env_names_source(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "turbo")
    with pytest.raises(ValueError) as exc:
        resolve_backend(None)
    assert "REPRO_BACKEND" in str(exc.value)


def test_unknown_backend_error_notes_optional_backends(monkeypatch):
    """With the kernel toolchain unavailable, the selection error also
    says the optional backend is degraded (and why)."""
    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    with pytest.raises(ValueError) as exc:
        resolve_backend("nope")
    msg = str(exc.value)
    for opt in OPTIONAL_BACKENDS:
        assert f"[{opt}:" in msg
