"""The event-horizon fast-forward engine's bit-identity contract.

``Processor.step_fast`` may only jump over windows where the machine is
provably frozen, so a fast-forwarded run must produce *exactly* the same
statistics — every counter, not just IPC — as stepping each cycle.  These
tests pin that contract for every registered policy, over ILP-, MEM- and
mixed-bound workloads, with and without telemetry attached, and pin the
exact-stop behaviour of :func:`run_simulation` that the engine's run loops
rely on.
"""

from __future__ import annotations

import pytest

from repro.core.processor import Processor
from repro.core.simulator import fast_forward_default, run_simulation
from repro.policies import POLICY_NAMES, make_policy
from repro.telemetry import Telemetry, TelemetryConfig


def _policy(name):
    # a quick-scale adaptation interval so CDPRF actually re-partitions
    # (and its interval-boundary ff_horizon actually fires) in short runs
    return make_policy(name, interval=1024) if name == "cdprf" else make_policy(name)


def _run(config, policy_name, traces, fast_forward, telemetry=False):
    tel = Telemetry(TelemetryConfig(sample_interval=512)) if telemetry else None
    return run_simulation(
        config,
        _policy(policy_name),
        list(traces),
        max_cycles=60_000,
        warmup_uops=300,
        prewarm_caches=True,
        telemetry=tel,
        fast_forward=fast_forward,
    )


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("kind", ["ilp", "mem", "mix"])
def test_bit_identical_stats(config, policy, kind, ilp_trace, ilp_trace_b, mem_trace):
    """Every policy, every workload kind: identical full stats dicts."""
    traces = {
        "ilp": [ilp_trace, ilp_trace_b],
        "mem": [mem_trace, ilp_trace_b],
        "mix": [ilp_trace, mem_trace],
    }[kind]
    slow = _run(config, policy, traces, fast_forward=False)
    fast = _run(config, policy, traces, fast_forward=True)
    assert fast.cycles == slow.cycles
    assert fast.committed == slow.committed
    assert fast.committed_per_thread == slow.committed_per_thread
    assert fast.stats == slow.stats


@pytest.mark.parametrize("policy", ["icount", "stall", "cdprf"])
def test_bit_identical_with_telemetry(config, policy, ilp_trace, mem_trace):
    """Telemetry attached: stats stay identical (and the sampler's jump
    horizon keeps samples on their exact cycles)."""
    traces = [ilp_trace, mem_trace]
    slow = _run(config, policy, traces, fast_forward=False, telemetry=True)
    fast = _run(config, policy, traces, fast_forward=True, telemetry=True)
    assert fast.stats == slow.stats


def test_telemetry_export_bytes_identical(config, mem_trace, fp_trace, tmp_path):
    """The exported telemetry artifacts — interval samples, event trace —
    are byte-for-byte identical with and without fast-forward."""
    out = {}
    for label, ff in (("off", False), ("on", True)):
        tel = Telemetry(TelemetryConfig(sample_interval=512))
        run_simulation(
            config,
            make_policy("stall"),
            [mem_trace, fp_trace],
            max_cycles=60_000,
            prewarm_caches=True,
            telemetry=tel,
            fast_forward=ff,
        )
        out[label] = tel.export(tmp_path / label, meta={"run": "ff-identity"})
    assert out["on"].keys() == out["off"].keys()
    for name, path_on in out["on"].items():
        on_bytes = path_on.read_bytes()
        off_bytes = out["off"][name].read_bytes()
        assert on_bytes == off_bytes, f"{name} export differs under fast-forward"


def test_fast_forward_actually_jumps(config, mem_trace, mem_trace_b):
    """Stall-gated MEM runs spend most cycles frozen; the engine must
    actually exploit that (a jump-free engine would trivially pass the
    identity tests)."""
    for policy in ("stall", "flush+"):
        proc = Processor(config, make_policy(policy), [mem_trace, mem_trace_b])
        while not proc.any_done() and proc.cycle < 100_000:
            proc.step_fast(100_000)
        assert proc.ff_jumps > 0
        assert proc.ff_skipped_cycles > 1000, (
            f"{policy}: only {proc.ff_skipped_cycles} cycles fast-forwarded"
        )


def test_fast_forward_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_FF", raising=False)
    assert fast_forward_default() is True
    for off in ("0", "false", "off", "no", " OFF "):
        monkeypatch.setenv("REPRO_FF", off)
        assert fast_forward_default() is False
    monkeypatch.setenv("REPRO_FF", "1")
    assert fast_forward_default() is True


def test_first_done_stops_exactly(config, ilp_trace, mem_trace):
    """``run_simulation`` stops on the commit cycle of the deciding thread.

    The pinned value is a regression guard for the old 16-cycle stop-poll,
    which overshot by up to 15 cycles and skewed ``cycles`` (and with it
    every per-thread IPC) — the exact cycle is asserted against a manual
    cycle-by-cycle loop, then pinned.
    """
    res = run_simulation(config, "icount", [ilp_trace, mem_trace])
    proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
    while not proc.any_done():
        proc.step()
    assert res.cycles == proc.cycle
    assert res.cycles == 2726  # pinned: exact commit cycle of thread 0


def test_all_done_stops_exactly(config, ilp_trace, ilp_trace_b):
    res = run_simulation(config, "icount", [ilp_trace, ilp_trace_b], stop="all_done")
    proc = Processor(config, make_policy("icount"), [ilp_trace, ilp_trace_b])
    while not proc.all_done():
        proc.step()
    assert res.cycles == proc.cycle
    assert res.cycles == 2599  # pinned


def test_stop_mode_cycles_unaffected(config, ilp_trace, mem_trace):
    """stop="cycles" runs exactly max_cycles with either engine."""
    for ff in (False, True):
        res = run_simulation(
            config,
            "stall",
            [ilp_trace, mem_trace],
            max_cycles=5_000,
            stop="cycles",
            fast_forward=ff,
        )
        assert res.cycles == 5_000
