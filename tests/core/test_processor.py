"""Pipeline integration and invariant tests.

These drive the whole processor on small traces and check architectural
bookkeeping invariants: no register leaks, exact in-order commit, squash
exactness, stable behaviour across policies.
"""

import numpy as np
import pytest

from repro.core.processor import DeadlockError, Processor
from repro.isa import NO_REG, UopClass
from repro.policies import POLICY_NAMES, make_policy
from repro.trace.trace import TRACE_DTYPE, Trace


def _run(proc, max_cycles=200_000):
    while not proc.all_done() and proc.cycle < max_cycles:
        proc.step()
    assert proc.all_done(), "simulation did not finish"
    return proc


def _manual_trace(rows, name="manual"):
    rec = np.zeros(len(rows), dtype=TRACE_DTYPE)
    for i, row in enumerate(rows):
        rec[i]["opclass"] = int(row.get("op", UopClass.INT_ALU))
        rec[i]["dest"] = row.get("dest", NO_REG)
        rec[i]["src1"] = row.get("src1", NO_REG)
        rec[i]["src2"] = row.get("src2", NO_REG)
        rec[i]["pc"] = row.get("pc", i)
        rec[i]["taken"] = row.get("taken", False)
        rec[i]["mem_line"] = row.get("line", 0)
    return Trace(rec, name=name)


class TestEndToEnd:
    def test_two_threads_commit_everything(self, config, ilp_trace, fp_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, fp_trace])
        _run(proc)
        assert proc.threads[0].committed == len(ilp_trace)
        assert proc.threads[1].committed == len(fp_trace)
        assert proc.stats.committed == len(ilp_trace) + len(fp_trace)

    def test_single_thread_runs(self, config, ilp_trace):
        proc = Processor(config.with_threads(1), make_policy("icount"), [ilp_trace])
        _run(proc)
        assert proc.threads[0].committed == len(ilp_trace)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_all_policies_complete(self, config, ilp_trace, mem_trace, policy):
        proc = Processor(config, make_policy(policy), [ilp_trace, mem_trace])
        _run(proc)
        assert proc.threads[0].committed == len(ilp_trace)
        assert proc.threads[1].committed == len(mem_trace)

    def test_deterministic_across_runs(self, config, ilp_trace, mem_trace):
        def run_once():
            proc = Processor(config, make_policy("cssp"), [ilp_trace, mem_trace])
            _run(proc)
            return proc.cycle, proc.stats.committed, proc.stats.copies_arrived

        assert run_once() == run_once()

    def test_trace_count_must_match(self, config, ilp_trace):
        with pytest.raises(ValueError, match="threads"):
            Processor(config, make_policy("icount"), [ilp_trace])


class TestInvariants:
    def _finished_proc(self, config, traces, policy="icount"):
        proc = Processor(config, make_policy(policy), traces)
        return _run(proc)

    @pytest.mark.parametrize("policy", ["icount", "flush+", "cssp", "cdprf", "pc"])
    def test_no_register_leaks(self, config, ilp_trace, mem_trace, policy):
        """At end of run, registers in use == live architectural mappings."""
        proc = self._finished_proc(config, [ilp_trace, mem_trace], policy)
        expected = [[0, 0], [0, 0]]  # [cluster][class]
        for t in proc.threads:
            for _arch, m in t.rename_table.live_mappings():
                k = 0 if _arch < 16 else 1
                expected[m.cluster][k] += 1
                if m.replica != NO_REG:
                    expected[1 - m.cluster][k] += 1
        for c, cl in enumerate(proc.clusters):
            for k in (0, 1):
                assert cl.regs[k].in_use == expected[c][k], (
                    f"cluster {c} class {k}: {cl.regs[k].in_use} in use, "
                    f"{expected[c][k]} live mappings"
                )

    @pytest.mark.parametrize("policy", ["icount", "flush+", "cssp"])
    def test_structures_drain(self, config, ilp_trace, mem_trace, policy):
        proc = self._finished_proc(config, [ilp_trace, mem_trace], policy)
        for cl in proc.clusters:
            assert cl.iq.occupancy == 0
            assert cl.iq.per_thread == [0, 0]
        assert proc.mob.occupancy == 0
        for t in proc.threads:
            assert len(t.rob) == 0
            assert not t.inflight
            assert t.icount == 0

    def test_committed_matches_trace_lengths(self, config, ilp_trace, ilp_trace_b):
        proc = self._finished_proc(config, [ilp_trace, ilp_trace_b])
        assert proc.stats.committed_per_thread == [
            len(ilp_trace),
            len(ilp_trace_b),
        ]

    def test_wrong_path_never_commits(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        committed_wrong = 0
        orig = proc._commit_uop

        def spy(thread, uop):
            nonlocal committed_wrong
            if uop.wrong_path:
                committed_wrong += 1
            orig(thread, uop)

        proc._commit_uop = spy
        _run(proc)
        assert committed_wrong == 0
        assert proc.stats.wrong_path_fetched > 0  # speculation did happen

    def test_copies_happen_and_are_counted(self, config, ilp_trace, fp_trace):
        proc = self._finished_proc(config, [ilp_trace, fp_trace])
        assert proc.stats.copies_renamed > 0
        assert proc.stats.copies_arrived > 0
        assert proc.stats.copies_arrived <= proc.stats.copies_renamed

    def test_icount_counter_is_consistent(self, config, ilp_trace, mem_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, mem_trace])
        for _ in range(3000):
            proc.step()
            for t in proc.threads:
                live = sum(
                    1 for u in t.inflight if not u.issued and not u.squashed
                )
                assert live == t.icount, f"cycle {proc.cycle} thread {t.tid}"
            if proc.all_done():
                break


class TestPipelineSemantics:
    def test_dependent_chain_serializes(self, config):
        # r1 <- r0; r2 <- r1; ... each must wait for the previous
        rows = [{"dest": 1, "src1": 0}]
        for i in range(1, 40):
            rows.append({"dest": (i % 10) + 1, "src1": ((i - 1) % 10) + 1})
        trace = _manual_trace(rows)
        proc = Processor(config.with_threads(1), make_policy("icount"), [trace])
        _run(proc)
        assert proc.cycle >= 40  # at least one cycle per chain link

    def test_independent_uops_reach_high_ipc(self, config):
        # a loop of independent uops (repeating PCs keep the TC warm after
        # the first iteration): pure machine-width test
        rows = [
            {"dest": (i % 10) + 1, "src1": 12, "src2": 13, "pc": i % 60}
            for i in range(1200)
        ]
        trace = _manual_trace(rows)
        proc = Processor(config.with_threads(1), make_policy("icount"), [trace])
        _run(proc)
        ipc = proc.stats.committed / proc.stats.cycles
        assert ipc > 3.0

    def test_load_latency_visible(self, config):
        # a load to a cold line followed by a long dependent chain
        rows = [{"op": UopClass.LOAD, "dest": 1, "src1": 0, "line": 12345}]
        rows += [{"dest": 2, "src1": 1}, {"dest": 3, "src1": 2}]
        trace = _manual_trace(rows)
        proc = Processor(config.with_threads(1), make_policy("icount"), [trace])
        _run(proc)
        # cold DTLB + L1 + L2 + memory is ~100 cycles
        assert proc.cycle > 80

    def test_store_load_forwarding_fast_path(self, config):
        rows = [
            {"op": UopClass.STORE, "src1": 0, "src2": 1, "line": 7},
            {"op": UopClass.LOAD, "dest": 2, "src1": 0, "line": 7},
        ]
        trace = _manual_trace(rows)
        proc = Processor(config.with_threads(1), make_policy("icount"), [trace])
        _run(proc)
        assert proc.mob.forwards == 1
        # cold-start overheads only (TC miss, DTLB walk for the store) —
        # no 60-cycle memory round trip for the load itself
        assert proc.cycle < 70

    def test_branch_mispredict_costs_redirect(self, config):
        # one never-taken branch trained taken: guaranteed early mispredicts
        rows = []
        for i in range(30):
            rows.append({"dest": 1, "src1": 0, "pc": i * 2})
            rows.append(
                {"op": UopClass.BRANCH, "src1": 1, "pc": i * 2 + 1, "taken": i % 2 == 0}
            )
        trace = _manual_trace(rows)
        proc = Processor(config.with_threads(1), make_policy("icount"), [trace])
        _run(proc)
        assert proc.stats.mispredicts > 0
        assert proc.stats.squashed_uops >= 0


class TestFlushMachinery:
    def test_flush_thread_rewinds_and_refetches(self, config, mem_trace, ilp_trace):
        proc = Processor(config, make_policy("flush+"), [mem_trace, ilp_trace])
        _run(proc)
        # flushes happened and everything still committed exactly once
        assert proc.stats.flushes > 0
        assert proc.threads[0].committed == len(mem_trace)
        assert proc.threads[1].committed == len(ilp_trace)

    def test_watchdog_detects_stuck_pipeline(self, config, ilp_trace, fp_trace):
        proc = Processor(config, make_policy("icount"), [ilp_trace, fp_trace])
        # simulate a wedge: block commit forever by gating both threads' rename
        # and emptying nothing — easiest is to exhaust the trace then lie
        proc._last_commit_cycle = -10**9
        with pytest.raises(DeadlockError):
            proc.step()
