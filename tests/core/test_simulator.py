"""Run-API tests (stop modes, warmup, prewarm, result packaging)."""

import pytest

from repro.core.simulator import (
    run_simulation,
    run_single_thread,
    run_workload,
)
from repro.trace.workloads import build_pool


def test_first_done_stops_at_first_thread(config, ilp_trace, mem_trace):
    res = run_simulation(config, "icount", [ilp_trace, mem_trace])
    done = [
        res.committed_per_thread[t] == n
        for t, n in enumerate([len(ilp_trace), len(mem_trace)])
    ]
    assert any(done)
    assert not all(done)  # the mem thread lags far behind


def test_all_done_finishes_everything(config, ilp_trace, ilp_trace_b):
    res = run_simulation(config, "icount", [ilp_trace, ilp_trace_b], stop="all_done")
    assert res.committed == len(ilp_trace) + len(ilp_trace_b)


def test_cycles_mode_runs_exact_budget(config, ilp_trace, mem_trace):
    res = run_simulation(
        config, "icount", [ilp_trace, mem_trace], max_cycles=500, stop="cycles"
    )
    assert res.cycles == 500


def test_invalid_stop_rejected(config, ilp_trace, mem_trace):
    with pytest.raises(ValueError, match="stop"):
        run_simulation(config, "icount", [ilp_trace, mem_trace], stop="nope")


def test_policy_accepts_instance(config, ilp_trace, mem_trace):
    from repro.policies import make_policy

    res = run_simulation(config, make_policy("cssp"), [ilp_trace, mem_trace])
    assert res.policy == "cssp"


def test_warmup_excludes_startup(config, ilp_trace, ilp_trace_b):
    cold = run_simulation(config, "icount", [ilp_trace, ilp_trace_b])
    warm = run_simulation(
        config, "icount", [ilp_trace, ilp_trace_b], warmup_uops=2000
    )
    # warm measurement covers fewer instructions at higher, steadier IPC
    assert warm.committed < cold.committed
    assert warm.ipc > cold.ipc * 0.9


def test_prewarm_kills_ilp_compulsory_misses(config, ilp_trace, ilp_trace_b):
    res = run_simulation(
        config, "icount", [ilp_trace, ilp_trace_b], prewarm_caches=True
    )
    assert res.stats["extra"]["l2_misses"] == 0


def test_prewarm_preserves_mem_boundedness(config, mem_trace, ilp_trace):
    res = run_simulation(
        config, "icount", [mem_trace, ilp_trace], prewarm_caches=True
    )
    assert res.stats["extra"]["l2_misses"] > 0


def test_run_workload_names_result(config):
    pool = build_pool(n_uops=600, n_ilp=1, n_mem=0, n_mix=0, n_mixes_category=0)
    wl = pool.workloads[0]
    res = run_workload(config, "icount", wl)
    assert res.workload == f"{wl.category}/{wl.name}"


def test_run_single_thread_uses_full_machine(config, ilp_trace):
    res = run_single_thread(config, ilp_trace)
    assert res.committed == len(ilp_trace)
    assert res.committed_per_thread == (len(ilp_trace),)


def test_thread_ipc_accessor(config, ilp_trace, mem_trace):
    res = run_simulation(config, "icount", [ilp_trace, mem_trace])
    total = res.thread_ipc(0) + res.thread_ipc(1)
    assert total == pytest.approx(res.ipc)


def test_result_is_deterministic(config, ilp_trace, mem_trace):
    a = run_simulation(config, "cssp", [ilp_trace, mem_trace])
    b = run_simulation(config, "cssp", [ilp_trace, mem_trace])
    assert a.cycles == b.cycles
    assert a.committed_per_thread == b.committed_per_thread
