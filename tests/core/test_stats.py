"""Statistics block tests."""

import pytest

from repro.core.stats import IMBALANCE_CLASSES, STALL_CAUSES, SimStats


def test_initialization():
    s = SimStats(2)
    assert s.committed_per_thread == [0, 0]
    assert set(s.rename_stall_cycles) == set(STALL_CAUSES)
    assert set(s.imbalance) == set(IMBALANCE_CLASSES)


def test_derived_ratios():
    s = SimStats(2)
    s.cycles = 100
    s.committed = 250
    s.copies_arrived = 25
    s.iq_stalls = 50
    assert s.ipc == 2.5
    assert s.copies_per_committed == 0.1
    assert s.iq_stalls_per_committed == 0.2


def test_ratios_safe_on_zero():
    s = SimStats(2)
    assert s.ipc == 0.0
    assert s.copies_per_committed == 0.0
    assert s.iq_stalls_per_committed == 0.0
    assert s.thread_ipc(0) == 0.0


def test_imbalance_breakdown_sums_to_one():
    s = SimStats(2)
    s.imbalance[0] = [3, 1]
    s.imbalance[1] = [2, 2]
    s.imbalance[2] = [1, 1]
    breakdown = s.imbalance_breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["0 Integer"] == pytest.approx(0.3)
    assert breakdown["1 Mem"] == pytest.approx(0.1)


def test_imbalance_breakdown_empty():
    s = SimStats(2)
    assert all(v == 0.0 for v in s.imbalance_breakdown().values())


def test_as_dict_round_trips_key_fields():
    s = SimStats(2)
    s.cycles = 10
    s.committed = 20
    s.committed_per_thread = [12, 8]
    d = s.as_dict()
    assert d["cycles"] == 10
    assert d["ipc"] == 2.0
    assert d["committed_per_thread"] == [12, 8]
    assert "imbalance_breakdown" in d
    import json

    json.dumps(d)  # must be JSON-serializable
