"""Seeded randomized cross-backend property test.

The hand-written identity suite (:mod:`tests.core.test_backend_identity`)
pins known-interesting scenarios; this module draws *random* ones.  Each
case derives a machine configuration, a policy, and a pair of synthetic
traces from a seeded :class:`random.Random`, runs it on every registered
backend, and requires bit-identical statistics against the reference
oracle.  The draws are deterministic (fixed seeds), so a failure is a
reproducible counterexample: re-run with the printed seed and bisect.

Randomizing configuration corners (queue sizes, register files, thread
counts, wrong-path modeling, unbounded resources) is what catches the
interactions the curated suite doesn't think to combine — e.g. a tiny
issue queue under an adaptive policy with indirect-branch-heavy traces.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config import baseline_config
from repro.core.backends import BACKENDS
from repro.core.simulator import run_simulation
from repro.policies import POLICY_NAMES, make_policy
from repro.trace.synthesis import TraceProfile, generate_trace

ALT_BACKENDS = [b for b in BACKENDS if b != "reference"]

#: One test case per seed; keep the list short — every case runs
#: ``1 + len(ALT_BACKENDS)`` full simulations.
SEEDS = [101, 202, 303, 404, 505, 606]


def _random_profile(rng: random.Random, name: str) -> TraceProfile:
    return TraceProfile(
        name=name,
        frac_load=rng.uniform(0.1, 0.35),
        frac_store=rng.uniform(0.04, 0.15),
        frac_branch=rng.uniform(0.05, 0.18),
        frac_indirect=rng.choice([0.0, 0.0, rng.uniform(0.05, 0.3)]),
        indirect_targets=rng.randint(2, 8),
        frac_complex=rng.choice([0.0, rng.uniform(0.01, 0.06)]),
        dep_mean_distance=rng.uniform(3.0, 12.0),
        dep_locality=rng.uniform(0.2, 0.6),
        working_set_lines=rng.choice([150, 600, 4_000, 120_000]),
        stride_frac=rng.uniform(0.3, 0.8),
        load_dep_chain=rng.choice([0.0, rng.uniform(0.1, 0.4)]),
        branch_bias=rng.uniform(0.8, 0.97),
        int_regs_used=rng.randint(8, 14),
        fp_regs_used=rng.randint(2, 12),
        n_blocks=rng.randint(16, 56),
    )


def _random_case(seed: int):
    rng = random.Random(seed)
    config = baseline_config(
        unbounded_regs=rng.random() < 0.2,
        unbounded_rob=rng.random() < 0.2,
        model_wrong_path=rng.random() < 0.85,
        rob_entries_per_thread=rng.choice([48, 96, 128]),
    )
    if rng.random() < 0.5:
        config = config.with_iq_entries(rng.choice([12, 20, 32]))
    if rng.random() < 0.4:
        config = config.with_regs(rng.choice([40, 56, 64]))
    num_threads = rng.choice([1, 2, 2])
    config = config.with_threads(num_threads)
    kinds = [rng.choice(["ilp", "mem", "mix"]) for _ in range(num_threads)]
    traces = [
        generate_trace(
            _random_profile(rng, f"prop-{seed}-{i}"),
            seed=rng.randint(0, 2**31),
            n_uops=rng.randint(1_500, 3_000),
            kind=kind,
        )
        for i, kind in enumerate(kinds)
    ]
    policy_name = rng.choice(POLICY_NAMES)
    policy_kw = {"interval": 1024} if policy_name == "cdprf" else {}
    run_kw = {
        "fast_forward": rng.random() < 0.7,
        "warmup_uops": rng.choice([0, 300]),
        "prewarm_caches": rng.random() < 0.7,
        "max_cycles": 60_000,
    }
    return config, policy_name, policy_kw, traces, run_kw


@pytest.mark.parametrize("seed", SEEDS)
def test_random_scenario_identical_across_backends(seed):
    config, policy_name, policy_kw, traces, run_kw = _random_case(seed)
    results = {}
    for backend in ("reference", *ALT_BACKENDS):
        results[backend] = run_simulation(
            config,
            make_policy(policy_name, **policy_kw),
            list(traces),
            backend=backend,
            **run_kw,
        )
    ref = results["reference"]
    label = f"seed={seed} policy={policy_name} cfg={dataclasses.asdict(config)}"
    for backend in ALT_BACKENDS:
        got = results[backend]
        assert got.cycles == ref.cycles, f"{backend} diverged: {label}"
        assert got.committed == ref.committed, f"{backend} diverged: {label}"
        assert got.committed_per_thread == ref.committed_per_thread, (
            f"{backend} diverged: {label}"
        )
        assert got.ipc == ref.ipc, f"{backend} diverged: {label}"
        assert got.stats == ref.stats, f"{backend} diverged: {label}"
