"""Region API of the whole-loop compiled backend (``cloop``).

The C kernel runs *bounded regions* and re-enters Python only at
observable-event boundaries; :meth:`CloopProcessor.run_cycles` is the
public face of that contract.  These tests pin the contract itself —
typed exit reasons, exact cycle bounds, exit tallies, observable-state
export at every boundary, sticky mid-run fallback — independent of the
cross-backend identity suite (which pins *what* the regions compute).

Everything here must hold with and without the toolchain: the pure
fallback implements the same region API through the inherited engines,
so each test also runs under ``REPRO_NO_CKERNEL``.
"""

from __future__ import annotations

import pytest

from repro.core.backends import make_processor
from repro.core.cloop import REGION_DONE, REGION_LIMIT, CloopProcessor
from repro.policies import make_policy


def _proc(config, traces, policy="icount", **kw):
    return make_processor("cloop", config, make_policy(policy), list(traces), **kw)


@pytest.fixture(params=["kernel", "fallback"])
def mode(request, monkeypatch):
    """Run each test twice: resident C kernel and pure fallback."""
    if request.param == "fallback":
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    return request.param


def test_run_cycles_limit(config, ilp_trace, mem_trace, mode):
    """A bounded region advances exactly ``n`` cycles and reports it."""
    proc = _proc(config, [ilp_trace, mem_trace])
    reason = proc.run_cycles(50, use_ff=False)
    assert reason == REGION_LIMIT
    assert proc.cycle == 50
    assert proc.stats.cycles == 50
    assert proc.region_exits[REGION_LIMIT] == 1
    assert proc.region_exits[REGION_DONE] == 0


def test_run_cycles_done(config, ilp_trace, mem_trace, mode):
    """A generous region with a stop condition exits ``done`` early."""
    proc = _proc(config, [ilp_trace, mem_trace])
    reason = proc.run_cycles(200_000, stop="first_done")
    assert reason == REGION_DONE
    assert proc.cycle < 200_000
    assert proc.finished_count > 0
    assert proc.region_exits[REGION_DONE] == 1


def test_run_cycles_rejects_unknown_stop(config, ilp_trace, mem_trace, mode):
    proc = _proc(config, [ilp_trace, mem_trace])
    with pytest.raises(ValueError):
        proc.run_cycles(10, stop="until_bored")


def test_chunked_regions_identical_to_one_shot(config, ilp_trace, mem_trace, mode):
    """Driving the machine in many small regions is bit-identical to one
    big region — the export/resume boundary is lossless for every
    observable counter."""
    one = _proc(config, [ilp_trace, mem_trace])
    one.run_loop(60_000)
    chunked = _proc(config, [ilp_trace, mem_trace])
    while chunked.finished_count == 0 and chunked.cycle < 60_000:
        chunked.run_cycles(257, stop="first_done")
    assert chunked.finalize_stats().as_dict() == one.finalize_stats().as_dict()
    assert chunked.region_exits[REGION_DONE] == 1
    assert chunked.region_exits[REGION_LIMIT] > 1


def test_observable_state_exported_between_regions(config, ilp_trace, mem_trace,
                                                   mode):
    """Between regions, arbitrary Python may inspect the machine: the
    counters the figures read advance monotonically at each boundary."""
    proc = _proc(config, [ilp_trace, mem_trace])
    last_committed = -1
    for _ in range(4):
        proc.run_cycles(300)
        assert proc.stats.committed >= last_committed
        last_committed = proc.stats.committed
        assert proc.stats.cycles == proc.cycle
    assert last_committed > 0


def test_mid_run_fallback_is_sticky(config, ilp_trace, mem_trace, monkeypatch):
    """A machine that already ran on the pure engine must never adopt the
    C kernel mid-flight (one instance never mixes machine state)."""
    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    proc = _proc(config, [ilp_trace, mem_trace])
    proc.run_cycles(100)
    monkeypatch.delenv("REPRO_NO_CKERNEL")
    assert proc._ensure_ctx() is False  # sticky: mid-run state is Python's
    proc.run_cycles(100)
    assert proc.cycle == 200


def test_fallback_reports_reason(config, ilp_trace, mem_trace, monkeypatch):
    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    proc = _proc(config, [ilp_trace, mem_trace])
    proc.run_cycles(10)
    assert proc._cl is None
    assert proc._cl_error is not None
    assert "REPRO_NO_CKERNEL" in proc._cl_error


def test_non_c_policy_delegates(config, ilp_trace, mem_trace):
    """Policies outside the C table run through the inherited chain; the
    region API still honours its contract there."""
    proc = _proc(config, [ilp_trace, mem_trace], policy="cdprf")
    assert isinstance(proc, CloopProcessor)
    assert not proc._cloop_ok
    reason = proc.run_cycles(64, use_ff=False)
    assert reason == REGION_LIMIT
    assert proc.cycle == 64
    assert proc._cl is None


def test_region_exit_tallies_accumulate(config, ilp_trace, mem_trace, mode):
    proc = _proc(config, [ilp_trace, mem_trace])
    for _ in range(3):
        proc.run_cycles(100)
    proc.run_cycles(500_000, stop="all_done")
    assert proc.region_exits[REGION_LIMIT] == 3
    assert proc.region_exits[REGION_DONE] == 1
    assert proc.region_exits["watchdog"] == 0


def test_kernel_active_reflects_mode(config, ilp_trace, mem_trace, mode):
    proc = _proc(config, [ilp_trace, mem_trace])
    active = proc.kernel_active()
    if mode == "kernel":
        assert active
        assert proc._cl is not None
    else:
        assert proc._cl is None
