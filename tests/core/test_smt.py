"""Thread context tests."""

from repro.backend.rob import ReorderBuffer
from repro.core.smt import ThreadContext
from repro.isa import Uop, UopClass


def _ctx(trace):
    t = ThreadContext(0, trace)
    t.rob = ReorderBuffer(8)
    return t


def test_initial_state(ilp_trace):
    t = _ctx(ilp_trace)
    assert t.cursor == 0
    assert not t.trace_exhausted
    assert not t.finished
    assert t.icount == 0


def test_can_fetch_conditions(ilp_trace):
    t = _ctx(ilp_trace)
    assert t.can_fetch(cycle=0, queue_capacity=4)
    t.fetch_blocked_until = 10
    assert not t.can_fetch(cycle=5, queue_capacity=4)
    assert t.can_fetch(cycle=10, queue_capacity=4)
    t.flushed = True
    assert not t.can_fetch(cycle=10, queue_capacity=4)
    t.flushed = False
    for _ in range(4):
        t.fetch_queue.append(Uop(0, UopClass.INT_ALU))
    assert not t.can_fetch(cycle=10, queue_capacity=4)  # queue full


def test_can_fetch_wrong_path_past_trace_end(ilp_trace):
    t = _ctx(ilp_trace)
    t.cursor = len(ilp_trace)
    assert not t.can_fetch(cycle=0, queue_capacity=4)
    t.wrong_path = True
    assert t.can_fetch(cycle=0, queue_capacity=4)


def test_can_rename_conditions(ilp_trace):
    t = _ctx(ilp_trace)
    assert not t.can_rename(0)  # empty queue
    t.fetch_queue.append(Uop(0, UopClass.INT_ALU))
    assert t.can_rename(0)
    t.gated = True
    assert not t.can_rename(0)
    t.gated = False
    t.flushed = True
    assert not t.can_rename(0)
    t.flushed = False
    t.rename_blocked_until = 5
    assert not t.can_rename(4)
    assert t.can_rename(5)


def test_finished_requires_everything_drained(ilp_trace):
    t = _ctx(ilp_trace)
    t.cursor = len(ilp_trace)
    assert t.finished
    t.inflight.append(Uop(0, UopClass.INT_ALU))
    assert not t.finished
    t.inflight.clear()
    t.wrong_path = True
    assert not t.finished
