"""Configuration (Table 1) tests."""

import pytest

from repro.config import (
    CacheConfig,
    ProcessorConfig,
    TLBConfig,
    baseline_config,
)


def test_baseline_matches_table1():
    cfg = baseline_config()
    assert cfg.front_end.fetch_width == 6
    assert cfg.front_end.commit_width == 6
    assert cfg.front_end.mispredict_pipeline == 14
    assert cfg.rob_entries_per_thread == 128
    assert cfg.front_end.gshare_entries == 32 * 1024
    assert cfg.front_end.indirect_entries == 4096
    assert cfg.front_end.trace_cache_uops == 32 * 1024
    assert cfg.num_clusters == 2
    assert cfg.cluster.iq_entries == 32
    assert cfg.cluster.int_regs == 64
    assert cfg.cluster.fp_regs == 64
    assert cfg.cluster.num_ports == 3
    assert cfg.memory.mob_entries == 128
    assert cfg.memory.l1.size_bytes == 32 * 1024
    assert cfg.memory.l1.assoc == 2
    assert cfg.memory.l1.hit_latency == 1
    assert cfg.memory.l2.size_bytes == 4 * 1024 * 1024
    assert cfg.memory.l2.assoc == 8
    assert cfg.memory.l2.hit_latency == 12
    assert cfg.memory.memory_latency == 60
    assert cfg.memory.l1_l2_buses == 2
    assert cfg.num_links == 2
    assert cfg.link_latency == 1
    assert cfg.memory.dtlb.entries == 1024 and cfg.memory.dtlb.assoc == 8
    assert cfg.memory.itlb.entries == 1024 and cfg.memory.itlb.assoc == 8


def test_with_iq_entries():
    cfg = baseline_config().with_iq_entries(64)
    assert cfg.cluster.iq_entries == 64
    assert baseline_config().cluster.iq_entries == 32  # original frozen


def test_with_regs():
    cfg = baseline_config().with_regs(128)
    assert cfg.cluster.int_regs == 128
    assert cfg.cluster.fp_regs == 128
    cfg2 = baseline_config().with_regs(96, 80)
    assert (cfg2.cluster.int_regs, cfg2.cluster.fp_regs) == (96, 80)


def test_with_threads():
    assert baseline_config().with_threads(1).num_threads == 1


def test_digest_stable_and_sensitive():
    a = baseline_config()
    assert a.digest() == baseline_config().digest()
    assert a.digest() != a.with_iq_entries(64).digest()
    assert a.digest() != a.with_threads(1).digest()
    import dataclasses

    assert a.digest() != dataclasses.replace(a, model_wrong_path=False).digest()


def test_describe_covers_table1_rows():
    text = baseline_config().describe()
    for needle in (
        "Fetch width",
        "Misprediction pipeline",
        "Issue queue size per cluster",
        "Int physical registers",
        "L2 size",
        "Memory latency",
        "Point to point links",
    ):
        assert needle in text


def test_baseline_overrides():
    cfg = baseline_config(unbounded_regs=True)
    assert cfg.unbounded_regs
    assert not baseline_config().unbounded_regs


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=1000, assoc=3)


def test_tlb_sets():
    assert TLBConfig(entries=1024, assoc=8).num_sets == 128


def test_config_hashable():
    {baseline_config(): 1}  # frozen dataclasses must hash


def test_defaults_are_immutable():
    cfg = ProcessorConfig()
    with pytest.raises(Exception):
        cfg.num_threads = 4  # type: ignore[misc]
