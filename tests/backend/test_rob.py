"""Reorder buffer tests."""

import pytest

from repro.backend.rob import ReorderBuffer
from repro.isa import Uop, UopClass


def _uop(age):
    u = Uop(0, UopClass.INT_ALU)
    u.age = age
    return u


def test_fifo_order():
    rob = ReorderBuffer(4)
    a, b = _uop(1), _uop(2)
    rob.push(a)
    rob.push(b)
    assert rob.head() is a
    assert rob.pop_head() is a
    assert rob.head() is b


def test_capacity():
    rob = ReorderBuffer(2)
    rob.push(_uop(1))
    rob.push(_uop(2))
    assert not rob.can_alloc()
    assert rob.free_entries == 0
    with pytest.raises(RuntimeError, match="overflow"):
        rob.push(_uop(3))


def test_unbounded():
    rob = ReorderBuffer(2, unbounded=True)
    for age in range(10):
        rob.push(_uop(age))
    assert len(rob) == 10


def test_squash_younger_than():
    rob = ReorderBuffer(8)
    uops = [_uop(a) for a in (1, 2, 5, 9)]
    for u in uops:
        rob.push(u)
    squashed = rob.squash_younger_than(2)
    assert [u.age for u in squashed] == [9, 5]  # youngest first
    assert len(rob) == 2
    assert rob.head().age == 1


def test_squash_nothing():
    rob = ReorderBuffer(8)
    rob.push(_uop(1))
    assert rob.squash_younger_than(5) == []


def test_clear():
    rob = ReorderBuffer(8)
    for a in (1, 2, 3):
        rob.push(_uop(a))
    drained = rob.clear()
    assert [u.age for u in drained] == [3, 2, 1]
    assert len(rob) == 0
    assert rob.head() is None


def test_peak():
    rob = ReorderBuffer(8)
    for a in range(5):
        rob.push(_uop(a))
    for _ in range(5):
        rob.pop_head()
    assert rob.peak == 5
