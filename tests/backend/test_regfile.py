"""Physical register file tests."""

import pytest

from repro.backend.regfile import READY_EVERYWHERE, PhysRegFile, RegFileSet
from repro.isa import RegClass, Uop, UopClass


def _file(cap=8, unbounded=False):
    return PhysRegFile(0, RegClass.INT, cap, unbounded)


def test_alloc_free_cycle():
    f = _file(4)
    regs = [f.alloc() for _ in range(4)]
    assert len(set(regs)) == 4
    assert f.in_use == 4 and f.free_count == 0
    assert not f.can_alloc()
    for r in regs:
        f.free(r)
    assert f.in_use == 0 and f.free_count == 4


def test_exhaustion_raises():
    f = _file(2)
    f.alloc()
    f.alloc()
    with pytest.raises(RuntimeError, match="exhausted"):
        f.alloc()


def test_unbounded_grows():
    f = _file(2, unbounded=True)
    regs = [f.alloc() for _ in range(10)]
    assert len(set(regs)) == 10
    assert f.capacity >= 10


def test_ready_lifecycle():
    f = _file()
    p = f.alloc()
    assert not f.is_ready(p)
    f.set_ready(p)
    assert f.is_ready(p)
    f.free(p)
    p2 = f.alloc()
    if p2 == p:
        assert not f.is_ready(p2)  # readiness cleared on reuse


def test_waiters_woken_once():
    f = _file()
    p = f.alloc()
    u = Uop(0, UopClass.INT_ALU)
    u.wait_count = 1
    f.add_waiter(p, u)
    woken = f.set_ready(p)
    assert woken == [u]
    assert f.set_ready(p) == []  # waiter list cleared


def test_duplicate_waiter_registrations_both_returned():
    f = _file()
    p = f.alloc()
    u = Uop(0, UopClass.INT_ALU)
    f.add_waiter(p, u)
    f.add_waiter(p, u)
    assert f.set_ready(p) == [u, u]


def test_drop_waiter():
    f = _file()
    p = f.alloc()
    u = Uop(0, UopClass.INT_ALU)
    f.add_waiter(p, u)
    f.drop_waiter(p, u)
    assert f.set_ready(p) == []
    f.drop_waiter(p, u)  # idempotent


def test_free_with_live_waiters_raises():
    f = _file()
    p = f.alloc()
    f.add_waiter(p, Uop(0, UopClass.INT_ALU))
    with pytest.raises(RuntimeError, match="waiters"):
        f.free(p)


def test_peak_tracking():
    f = _file(8)
    a = f.alloc()
    b = f.alloc()
    f.free(a)
    f.free(b)
    assert f.peak_in_use == 2
    assert f.alloc_count == 2


def test_regfileset_indexing():
    s = RegFileSet(1, int_regs=8, fp_regs=4)
    assert s[RegClass.INT].capacity == 8
    assert s[RegClass.FP].capacity == 4
    assert s[0] is s[RegClass.INT]
    s[0].alloc()
    s[1].alloc()
    assert s.total_in_use() == 2


def test_ready_everywhere_sentinel_is_negative():
    # distinguishes "static value" from any real physical index
    assert READY_EVERYWHERE < 0
