"""Issue port and latency tests."""

from repro.backend.execute import PORT_CAPS, PortSet, latency_for
from repro.config import baseline_config
from repro.isa import UopClass
from repro.isa.uops import PORT_FP, PORT_INT, PORT_MEM


def test_port_caps_match_table1():
    # port0/1: int+fp+simd; port2: int+mem
    assert PORT_CAPS[0] == {PORT_INT, PORT_FP}
    assert PORT_CAPS[1] == {PORT_INT, PORT_FP}
    assert PORT_CAPS[2] == {PORT_INT, PORT_MEM}
    assert len(PORT_CAPS) == baseline_config().cluster.num_ports


class TestPortSet:
    def test_three_int_per_cycle(self):
        ps = PortSet()
        ps.new_cycle()
        assert ps.try_claim(PORT_INT)
        assert ps.try_claim(PORT_INT)
        assert ps.try_claim(PORT_INT)
        assert not ps.try_claim(PORT_INT)

    def test_two_fp_per_cycle(self):
        ps = PortSet()
        ps.new_cycle()
        assert ps.try_claim(PORT_FP)
        assert ps.try_claim(PORT_FP)
        assert not ps.try_claim(PORT_FP)

    def test_one_mem_per_cycle(self):
        ps = PortSet()
        ps.new_cycle()
        assert ps.try_claim(PORT_MEM)
        assert not ps.try_claim(PORT_MEM)

    def test_int_prefers_non_mem_ports(self):
        ps = PortSet()
        ps.new_cycle()
        ps.try_claim(PORT_INT)
        ps.try_claim(PORT_INT)
        # ports 0/1 busy; mem port still free for a load
        assert ps.has_free(PORT_MEM)
        assert ps.try_claim(PORT_MEM)

    def test_int_spills_to_mem_port(self):
        ps = PortSet()
        ps.new_cycle()
        ps.try_claim(PORT_FP)
        ps.try_claim(PORT_FP)
        assert ps.try_claim(PORT_INT)  # takes port 2
        assert not ps.has_free(PORT_MEM)

    def test_mix_capacity(self):
        ps = PortSet()
        ps.new_cycle()
        assert ps.try_claim(PORT_FP)
        assert ps.try_claim(PORT_INT)
        assert ps.try_claim(PORT_MEM)
        assert ps.free_count() == 0

    def test_new_cycle_resets(self):
        ps = PortSet()
        ps.new_cycle()
        for _ in range(3):
            ps.try_claim(PORT_INT)
        ps.new_cycle()
        assert ps.free_count() == 3

    def test_has_free_is_pure(self):
        ps = PortSet()
        ps.new_cycle()
        assert ps.has_free(PORT_FP)
        assert ps.has_free(PORT_FP)
        assert ps.free_count() == 3


class TestLatency:
    def test_latencies_positive_and_ordered(self):
        cfg = baseline_config()
        lat = {c: latency_for(cfg, c) for c in UopClass}
        assert all(v >= 1 for v in lat.values())
        assert lat[UopClass.INT_ALU] <= lat[UopClass.INT_MUL]
        assert lat[UopClass.INT_ALU] <= lat[UopClass.FP]
        assert lat[UopClass.BRANCH] == cfg.branch_latency
        assert lat[UopClass.COPY] == cfg.copy_latency

    def test_load_latency_is_agu_only(self):
        cfg = baseline_config()
        # cache latency is added by the memory model, not here
        assert latency_for(cfg, UopClass.LOAD) == cfg.agu_latency
