"""Issue queue tests."""

import pytest

from repro.backend.issue import IssueQueue
from repro.isa import Uop, UopClass


def _uop(age, tid=0, wait=0):
    u = Uop(tid, UopClass.INT_ALU)
    u.age = age
    u.wait_count = wait
    u.cluster = 0
    return u


def _iq(cap=4, threads=2):
    return IssueQueue(0, cap, threads)


def test_dispatch_occupancy():
    iq = _iq()
    iq.dispatch(_uop(1, tid=0))
    iq.dispatch(_uop(2, tid=1))
    assert iq.occupancy == 2
    assert iq.per_thread == [1, 1]
    assert iq.free_entries == 2


def test_overflow_raises():
    iq = _iq(cap=1)
    iq.dispatch(_uop(1))
    assert iq.is_full()
    with pytest.raises(RuntimeError, match="overflow"):
        iq.dispatch(_uop(2))


def test_ready_uops_selected_oldest_first():
    iq = _iq(cap=8)
    for age in (5, 3, 9, 1):
        iq.dispatch(_uop(age))
    issued, passed = iq.select(8, lambda u: True)
    assert [u.age for u in issued] == [1, 3, 5, 9]
    assert passed == []


def test_not_ready_not_selected():
    iq = _iq()
    ready = _uop(1)
    waiting = _uop(2, wait=1)
    iq.dispatch(ready)
    iq.dispatch(waiting)
    issued, _ = iq.select(8, lambda u: True)
    assert issued == [ready]


def test_wake_promotes_to_ready():
    iq = _iq()
    waiting = _uop(2, wait=1)
    iq.dispatch(waiting)
    waiting.wait_count = 0
    iq.wake(waiting)
    issued, _ = iq.select(8, lambda u: True)
    assert issued == [waiting]


def test_wake_ignores_still_waiting():
    iq = _iq()
    waiting = _uop(2, wait=2)
    iq.dispatch(waiting)
    waiting.wait_count = 1
    iq.wake(waiting)
    issued, _ = iq.select(8, lambda u: True)
    assert issued == []


def test_port_rejection_passes_over():
    iq = _iq(cap=8)
    for age in (1, 2, 3):
        iq.dispatch(_uop(age))
    # only one port available
    slots = [True]
    issued, passed = iq.select(8, lambda u: slots.pop() if slots else False)
    assert [u.age for u in issued] == [1]
    assert sorted(u.age for u in passed) == [2, 3]
    # passed-over uops stay selectable next cycle
    issued2, _ = iq.select(8, lambda u: True)
    assert [u.age for u in issued2] == [2, 3]


def test_squashed_lazily_dropped():
    iq = _iq()
    u = _uop(1)
    iq.dispatch(u)
    u.squashed = True
    iq.release(u)  # squash path releases the entry
    issued, passed = iq.select(8, lambda u: True)
    assert issued == [] and passed == []


def test_release_underflow_raises():
    iq = _iq()
    u = _uop(1)
    iq.dispatch(u)
    iq.release(u)
    with pytest.raises(RuntimeError, match="underflow"):
        iq.release(u)


def test_max_scan_limits_depth():
    iq = _iq(cap=8)
    for age in (1, 2, 3, 4):
        iq.dispatch(_uop(age))
    issued, passed = iq.select(2, lambda u: True)
    assert len(issued) == 2  # only scanned two entries


def test_peak_tracking():
    iq = _iq(cap=4)
    uops = [_uop(a) for a in range(3)]
    for u in uops:
        iq.dispatch(u)
    for u in uops:
        u.issued = True
        iq.release(u)
    assert iq.peak == 3 and iq.occupancy == 0


def test_ready_uops_iterator():
    iq = _iq(cap=8)
    iq.dispatch(_uop(1))
    iq.dispatch(_uop(2, wait=1))
    assert sorted(u.age for u in iq.ready_uops()) == [1]
