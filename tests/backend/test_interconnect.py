"""Inter-cluster link tests."""

from repro.backend.interconnect import Interconnect
from repro.isa import Uop, UopClass


def _copy(age=0):
    u = Uop(0, UopClass.COPY)
    u.age = age
    return u


def test_basic_transfer_latency():
    icn = Interconnect(num_links=2, latency=1)
    c = _copy()
    icn.request(c)
    assert icn.tick(10) == []   # launched at 10, arrives at 11
    assert icn.tick(11) == [c]
    assert icn.transfers == 1


def test_bandwidth_limit_queues_excess():
    icn = Interconnect(num_links=2, latency=1)
    copies = [_copy(i) for i in range(5)]
    for c in copies:
        icn.request(c)
    icn.tick(0)  # launches 2
    arrived = icn.tick(1)  # launches 2 more, delivers first 2
    assert len(arrived) == 2
    arrived = icn.tick(2)
    assert len(arrived) == 2
    arrived = icn.tick(3)
    assert len(arrived) == 1
    assert icn.transfers == 5


def test_queue_wait_accounting():
    icn = Interconnect(num_links=1, latency=1)
    for i in range(3):
        icn.request(_copy(i))
    icn.tick(0)  # 1 launched, 2 waiting
    assert icn.queue_wait_cycles == 2


def test_squashed_copies_not_delivered():
    icn = Interconnect(num_links=2, latency=2)
    c = _copy()
    icn.request(c)
    icn.tick(0)
    c.squashed = True
    assert icn.tick(2) == []


def test_squashed_copies_not_launched():
    icn = Interconnect(num_links=2, latency=1)
    c = _copy()
    c.squashed = True
    icn.request(c)
    icn.tick(0)
    assert icn.transfers == 0
    assert icn.tick(1) == []


def test_longer_latency():
    icn = Interconnect(num_links=1, latency=4)
    c = _copy()
    icn.request(c)
    icn.tick(100)
    for cyc in range(101, 104):
        assert icn.tick(cyc) == []
    assert icn.tick(104) == [c]


def test_pending_count():
    icn = Interconnect(num_links=1, latency=1)
    icn.request(_copy(0))
    icn.request(_copy(1))
    assert icn.pending_count() == 2
    icn.tick(0)
    assert icn.pending_count() == 2  # one in flight, one queued
    icn.tick(1)
    assert icn.pending_count() == 1
