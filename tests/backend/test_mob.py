"""Memory order buffer tests."""

import pytest

from repro.backend.mob import MemoryOrderBuffer
from repro.isa import Uop, UopClass


def _load(tid=0, line=10):
    return Uop(tid, UopClass.LOAD, dest=1, src1=0, mem_line=line)


def _store(tid=0, line=10):
    return Uop(tid, UopClass.STORE, src1=0, src2=1, mem_line=line)


def test_alloc_release():
    mob = MemoryOrderBuffer(4, 2)
    u = _load()
    mob.alloc(u)
    assert mob.occupancy == 1 and mob.per_thread == [1, 0]
    mob.release(u)
    assert mob.occupancy == 0
    mob.release(u)  # idempotent after release
    assert mob.occupancy == 0


def test_capacity():
    mob = MemoryOrderBuffer(2, 1)
    mob.alloc(_load())
    mob.alloc(_load())
    assert not mob.can_alloc()
    with pytest.raises(RuntimeError, match="overflow"):
        mob.alloc(_load())


def test_forwarding_from_executed_store():
    mob = MemoryOrderBuffer(8, 2)
    st = _store(tid=0, line=42)
    ld = _load(tid=0, line=42)
    mob.alloc(st)
    mob.alloc(ld)
    assert not mob.can_forward(ld)  # store not executed yet
    mob.store_executed(st)
    assert mob.can_forward(ld)


def test_no_cross_thread_forwarding():
    mob = MemoryOrderBuffer(8, 2)
    st = _store(tid=0, line=42)
    mob.alloc(st)
    mob.store_executed(st)
    assert not mob.can_forward(_load(tid=1, line=42))


def test_forwarding_ends_at_store_release():
    mob = MemoryOrderBuffer(8, 2)
    st = _store(line=42)
    mob.alloc(st)
    mob.store_executed(st)
    mob.release(st)  # commit
    assert not mob.can_forward(_load(line=42))


def test_multiple_stores_same_line():
    mob = MemoryOrderBuffer(8, 2)
    st1, st2 = _store(line=7), _store(line=7)
    mob.alloc(st1)
    mob.alloc(st2)
    mob.store_executed(st1)
    mob.store_executed(st2)
    mob.release(st1)
    assert mob.can_forward(_load(line=7))  # st2 still in flight
    mob.release(st2)
    assert not mob.can_forward(_load(line=7))


def test_release_unexecuted_store_does_not_underflow_lines():
    mob = MemoryOrderBuffer(8, 2)
    st1, st2 = _store(line=9), _store(line=9)
    mob.alloc(st1)
    mob.alloc(st2)
    mob.store_executed(st1)
    mob.release(st2)  # squashed before executing
    assert mob.can_forward(_load(line=9))  # st1's record intact


def test_peak():
    mob = MemoryOrderBuffer(8, 1)
    uops = [_load() for _ in range(5)]
    for u in uops:
        mob.alloc(u)
    for u in uops:
        mob.release(u)
    assert mob.peak == 5
